"""The sync client: address parsing and retry/backoff policy."""

import pytest

from repro.service.client import Endpoint, ServiceClient, ServiceError
from repro.service.protocol import ProtocolError


class TestEndpointParsing:
    @pytest.mark.parametrize("address, family, detail", [
        ("/tmp/serve.sock", "unix", "/tmp/serve.sock"),
        ("serve.sock", "unix", "serve.sock"),
        ("./relative/path", "unix", "./relative/path"),
        ("localhost:7301", "tcp", ("localhost", 7301)),
        ("10.0.0.5:80", "tcp", ("10.0.0.5", 80)),
        (":7301", "tcp", ("127.0.0.1", 7301)),
    ])
    def test_parse(self, address, family, detail):
        endpoint = Endpoint.parse(address)
        assert endpoint.family == family
        if family == "unix":
            assert endpoint.path == detail
        else:
            assert (endpoint.host, endpoint.port) == detail

    @pytest.mark.parametrize("address", ["", "  ", "localhost",
                                         "host:notaport"])
    def test_unparseable_addresses_refused(self, address):
        with pytest.raises(ValueError):
            Endpoint.parse(address)


def make_client(**kwargs):
    kwargs.setdefault("token", "")
    kwargs.setdefault("backoff", 0.01)
    return ServiceClient("127.0.0.1:1", **kwargs)


class TestRetryPolicy:
    def test_transient_errors_retry_with_exponential_backoff(
            self, monkeypatch):
        delays = []
        client = make_client(retries=3, sleep=delays.append)
        attempts = []

        def fake_roundtrip(frame, request_id):
            attempts.append(request_id)
            if len(attempts) < 3:
                raise ProtocolError("busy", "hold on")
            return {"id": request_id, "ok": True, "pong": True}

        monkeypatch.setattr(client, "_roundtrip", fake_roundtrip)
        assert client.ping()["pong"] is True
        assert delays == [0.01, 0.02]
        # each attempt is a fresh request id (idempotence lives in the
        # journal, not the id)
        assert len(set(attempts)) == 3

    def test_connection_errors_retry(self, monkeypatch):
        client = make_client(retries=2, sleep=lambda _d: None)
        calls = []

        def fake_roundtrip(frame, request_id):
            calls.append(1)
            if len(calls) == 1:
                raise ConnectionError("gone")
            return {"id": request_id, "ok": True}

        monkeypatch.setattr(client, "_roundtrip", fake_roundtrip)
        client.ping()
        assert len(calls) == 2

    @pytest.mark.parametrize("kind", ["auth", "bad-request", "not-found"])
    def test_structural_errors_do_not_retry(self, monkeypatch, kind):
        client = make_client(retries=5, sleep=lambda _d: None)
        calls = []

        def fake_roundtrip(frame, request_id):
            calls.append(1)
            raise ProtocolError(kind, "no")

        monkeypatch.setattr(client, "_roundtrip", fake_roundtrip)
        with pytest.raises(ServiceError) as excinfo:
            client.ping()
        assert excinfo.value.kind == kind
        assert not excinfo.value.transient
        assert len(calls) == 1

    def test_exhausted_retries_surface_the_last_error(self, monkeypatch):
        client = make_client(retries=2, sleep=lambda _d: None)
        monkeypatch.setattr(
            client, "_roundtrip",
            lambda _f, _r: (_ for _ in ()).throw(
                ProtocolError("draining", "shutting down")))
        with pytest.raises(ServiceError) as excinfo:
            client.ping()
        assert excinfo.value.kind == "draining"
        assert excinfo.value.transient

    def test_refused_connection_raises_after_retries(self):
        # port 1 on localhost: nothing listens there
        client = make_client(retries=1, timeout=0.2,
                             sleep=lambda _d: None)
        with pytest.raises(ServiceError, match="2 attempt"):
            client.ping()
