"""Network chaos: the service front must not weaken the fabric's
bit-identity guarantee.

The ISSUE acceptance criteria pinned here:

* a campaign submitted over the socket under injected network faults
  AND worker faults yields a report byte-identical to the same specs
  submitted through the filesystem with no faults at all;
* a server killed between accepting a submit and flushing the journal
  never leaves a torn record that replay cannot repair.
"""

from repro.sched.campaign import CampaignConfig
from repro.sched.journal import read_records
from repro.sched.state import load_state
from repro.verify.chaos import (
    FaultPlan,
    chaos_submit,
    install_service_faults,
    run_chaos_campaign,
)

#: Matches ``run_chaos_campaign``'s defaults, so the socket-submitted
#: campaign record and the baseline's are the same document.
CHAOS_CONFIG = CampaignConfig(name="chaos", lease_ttl=3.0,
                              max_attempts=10, poison_threshold=10,
                              backoff=1.0)


def fault_free_baseline(tmp_path, specs, run_fn):
    """The same specs through the filesystem path with no faults."""
    directory = str(tmp_path / "baseline")
    outcome = run_chaos_campaign(directory, specs, run_fn,
                                 plan=FaultPlan(seed=0))
    return outcome.report_bytes


class TestNetworkFaults:
    def test_every_network_fault_converges_to_a_full_submission(
            self, server_factory, tiny_specs):
        handle = server_factory()
        address = handle.endpoints[0][1]
        outcome = chaos_submit(
            address, tiny_specs, CHAOS_CONFIG,
            kinds=("drop-frame", "half-frame", "disconnect-mid-submit"))
        assert outcome["injected"] == ["drop-frame", "half-frame",
                                       "disconnect-mid-submit"]
        # however many faulty attempts landed records, the clean retry
        # reports the full content-addressed set
        assert outcome["ack"]["total"] == 3
        assert sorted(outcome["ack"]["keys"]) == \
            sorted(spec.key() for spec in tiny_specs)
        state = load_state(handle.server.directory)
        assert sorted(state.order) == sorted(s.key() for s in tiny_specs)
        # dropped/half frames never reach the journal; complete submits
        # dedup — so exactly one task per spec, no duplicates
        assert state.counts()["total"] == 3

    def test_headline_bit_identity_under_network_and_worker_faults(
            self, tmp_path, server_factory, tiny_specs, stub_run_fn):
        """Socket submission + network faults + server kill + worker
        faults == filesystem submission with no faults, byte for byte."""
        handle = server_factory()
        address = handle.endpoints[0][1]
        armed = install_service_faults(handle.server, kills=1)
        chaos_submit(address, tiny_specs, CHAOS_CONFIG)
        assert armed["kills"] == 0, "the server-kill fault never fired"
        directory = handle.server.directory
        handle.stop()  # the server is gone; the journal is the truth

        # now drain the same directory under seeded worker faults
        # (kills, stalls, dropped heartbeats, journal tears, cache rot);
        # run_chaos_campaign resubmits the specs idempotently
        plan = FaultPlan.generate(seed=1234, n_faults=6, n_workers=2)
        outcome = run_chaos_campaign(directory, tiny_specs, stub_run_fn,
                                     plan=plan)
        assert outcome.state.counts()["done"] == 3
        assert outcome.report_bytes == fault_free_baseline(
            tmp_path, tiny_specs, stub_run_fn)


class TestServerKillMidSubmit:
    def test_torn_journal_is_repaired_and_resubmission_converges(
            self, server_factory, tiny_specs):
        handle = server_factory()
        address = handle.endpoints[0][1]
        armed = install_service_faults(handle.server, kills=1)
        outcome = chaos_submit(address, tiny_specs, CHAOS_CONFIG,
                               kinds=("kill-server-mid-submit",))
        assert armed["kills"] == 0, "the server-kill fault never fired"
        # replay over the torn journal must not crash, and the clean
        # retry restored whatever record was torn
        state = load_state(handle.server.directory)
        assert sorted(state.order) == sorted(s.key() for s in tiny_specs)
        assert outcome["ack"]["total"] == 3
        assert state.counts()["pending"] == 3
        # every surviving journal line parses (the repair on the next
        # locked append truncated the torn fragment)
        records = list(read_records(handle.server.directory))
        assert any(r.get("event") == "campaign" for r in records)
        assert sum(r.get("event") == "submit" for r in records) >= 3

    def test_kill_without_tear_still_converges(self, server_factory,
                                               tiny_specs):
        # server dies after a *complete* append (ack lost, journal whole)
        handle = server_factory()
        address = handle.endpoints[0][1]
        install_service_faults(handle.server, kills=1, tear=False)
        outcome = chaos_submit(address, tiny_specs, CHAOS_CONFIG,
                               kinds=("kill-server-mid-submit",))
        # the faulty attempt journaled everything; the retry added 0
        assert outcome["ack"]["added"] == 0
        assert load_state(handle.server.directory).counts()["total"] == 3
