"""The wire protocol: framing, envelopes, and structured errors."""

import pytest

from repro.service import protocol
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_response,
    new_request_id,
    ok_response,
    request_frame,
    validate_request,
    validate_response,
)


class TestFraming:
    def test_round_trip(self):
        frame = request_frame("status", request_id="abc", follow=True)
        assert decode_frame(encode_frame(frame)) == frame

    def test_one_line_sorted_keys(self):
        data = encode_frame({"b": 1, "a": 2})
        assert data == b'{"a":2,"b":1}\n'

    def test_oversized_frame_refused_on_encode(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"blob": "x" * MAX_FRAME_BYTES})

    def test_oversized_line_refused_on_decode(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"x" * (MAX_FRAME_BYTES + 1))

    def test_garbage_and_non_object_lines_refused(self):
        with pytest.raises(ProtocolError, match="unparseable"):
            decode_frame(b'{"torn": tru')
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_frame(b"[1,2,3]\n")


class TestRequests:
    def test_request_frame_envelope(self):
        frame = request_frame("submit", token="t", specs=[{"x": 1}])
        assert frame["proto"] == PROTOCOL_VERSION
        assert frame["verb"] == "submit"
        assert frame["token"] == "t"
        assert frame["specs"] == [{"x": 1}]
        assert validate_request(frame) == ("submit", frame["id"])

    def test_request_frame_skips_none_params(self):
        frame = request_frame("cancel", keys=None)
        assert "keys" not in frame

    def test_unknown_verb_refused_at_build_time(self):
        with pytest.raises(ProtocolError, match="unknown verb"):
            request_frame("reboot")

    @pytest.mark.parametrize("mutation, match", [
        ({"proto": 2}, "unsupported protocol"),
        ({"proto": None}, "unsupported protocol"),
        ({"verb": "reboot"}, "unknown verb"),
        ({"id": ""}, "request id"),
        ({"id": 7}, "request id"),
    ])
    def test_envelope_violations(self, mutation, match):
        frame = request_frame("ping")
        frame.update(mutation)
        with pytest.raises(ProtocolError, match=match):
            validate_request(frame)

    def test_request_ids_are_unique(self):
        ids = {new_request_id() for _ in range(256)}
        assert len(ids) == 256


class TestResponses:
    def test_ok_response_flags(self):
        assert "stream" not in ok_response("r", value=1)
        assert ok_response("r", stream=True)["stream"] is True
        assert ok_response("r", done=True)["done"] is True

    def test_error_response_clamps_unknown_kind(self):
        frame = error_response("r", "made-up", "boom")
        assert frame["error"]["kind"] == "internal"

    def test_validate_response_id_mismatch(self):
        with pytest.raises(ProtocolError, match="does not match"):
            validate_response(ok_response("other"), "mine")

    def test_validate_response_propagates_server_kind(self):
        frame = error_response("r", "busy", "hold on")
        with pytest.raises(ProtocolError) as excinfo:
            validate_response(frame, "r")
        assert excinfo.value.kind == "busy"
        assert excinfo.value.kind in protocol.TRANSIENT_ERROR_KINDS

    def test_validate_response_malformed(self):
        with pytest.raises(ProtocolError, match="malformed"):
            validate_response({"id": "r", "ok": False}, "r")
