"""Shared fixtures for the campaign-service suite.

Simulation results come from the scheduler suite's session memo (see
``tests/sched/conftest.py``): each distinct tiny spec runs exactly once
per session, and every server/worker in these tests serves from that
memo through ``stub_run_fn``.
"""

import pytest

from repro.experiments.parallel import run_spec

from tests.sched.conftest import tiny_spec


@pytest.fixture(scope="module")
def tiny_specs():
    return [tiny_spec(rotation=r) for r in range(3)]


@pytest.fixture(scope="module")
def tiny_results(tiny_specs):
    return {spec.key(): run_spec(spec) for spec in tiny_specs}


@pytest.fixture(scope="module")
def stub_run_fn(tiny_results):
    def run(spec):
        return tiny_results[spec.key()]

    return run


@pytest.fixture()
def server_factory(tmp_path, stub_run_fn):
    """Start ServerThreads on Unix sockets under ``tmp_path``; always
    drained at test exit."""
    from repro.service.server import ServerThread

    handles = []
    counter = [0]

    def start(directory=None, **kwargs):
        counter[0] += 1
        directory = directory or str(tmp_path / f"camp{counter[0]}")
        kwargs.setdefault("unix_path",
                          str(tmp_path / f"serve{counter[0]}.sock"))
        kwargs.setdefault("run_fn", stub_run_fn)
        kwargs.setdefault("use_env_token", False)
        handle = ServerThread(directory, **kwargs).start()
        handles.append(handle)
        return handle

    yield start
    for handle in handles:
        handle.stop()
