"""Unit tests for the pattern history table (gshare)."""

import pytest

from repro.branch.pht import PatternHistoryTable, TwoBitCounter


class TestTwoBitCounter:
    def test_initial_weakly_not_taken(self):
        assert not TwoBitCounter().taken

    def test_saturates_up(self):
        c = TwoBitCounter()
        for _ in range(10):
            c.update(True)
        assert c.value == 3 and c.taken

    def test_saturates_down(self):
        c = TwoBitCounter(3)
        for _ in range(10):
            c.update(False)
        assert c.value == 0 and not c.taken

    def test_hysteresis(self):
        c = TwoBitCounter(3)
        c.update(False)
        assert c.taken  # one not-taken doesn't flip a strong counter

    def test_bad_init_rejected(self):
        with pytest.raises(ValueError):
            TwoBitCounter(4)


class TestPatternHistoryTable:
    def test_paper_geometry(self):
        pht = PatternHistoryTable()
        assert pht.entries == 2048
        assert pht.history_bits == 11

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            PatternHistoryTable(entries=1000)

    def test_initially_predicts_not_taken(self):
        pht = PatternHistoryTable()
        assert not pht.predict(0x10000, 0)

    def test_learns_taken(self):
        pht = PatternHistoryTable()
        pht.update(0x10000, 0, True)
        pht.update(0x10000, 0, True)
        assert pht.predict(0x10000, 0)

    def test_index_is_xor_of_pc_and_history(self):
        pht = PatternHistoryTable(entries=2048)
        assert pht.index(0x10000, 0) == ((0x10000 >> 2) & 2047)
        assert pht.index(0x10000, 0b101) == (((0x10000 >> 2) ^ 0b101) & 2047)

    def test_distinct_histories_use_distinct_counters(self):
        pht = PatternHistoryTable()
        pht.update(0x10000, 0b0, True)
        pht.update(0x10000, 0b0, True)
        assert pht.predict(0x10000, 0b0)
        assert not pht.predict(0x10000, 0b1)

    def test_push_history_shifts_and_masks(self):
        pht = PatternHistoryTable(history_bits=3)
        h = 0
        for taken in (True, False, True, True):
            h = pht.push_history(h, taken)
        assert h == 0b011 or h == 0b0111 & 0b111
        assert h <= pht.history_mask

    def test_counter_values_stay_in_range(self):
        pht = PatternHistoryTable(entries=16)
        for i in range(200):
            pht.update(4 * i, i & 7, i % 3 == 0)
        assert all(0 <= v <= 3 for v in pht.table)

    def test_learns_alternating_pattern_with_history(self):
        """gshare's reason to exist: a strictly alternating branch is
        perfectly predictable with one bit of history."""
        pht = PatternHistoryTable()
        pc = 0x10400
        history = 0
        correct = 0
        outcome = True
        for i in range(200):
            prediction = pht.predict(pc, history)
            if i > 50:
                correct += prediction == outcome
            pht.update(pc, history, outcome)
            history = pht.push_history(history, outcome)
            outcome = not outcome
        assert correct > 140  # essentially perfect after warmup
