"""Unit tests for the branch target buffer."""

from repro.branch.btb import BranchTargetBuffer


class TestBasics:
    def test_miss_on_empty(self):
        btb = BranchTargetBuffer()
        assert btb.lookup(0, 0x10000) is None

    def test_insert_then_hit(self):
        btb = BranchTargetBuffer()
        btb.insert(0, 0x10000, 0x20000)
        assert btb.lookup(0, 0x10000) == 0x20000

    def test_update_changes_target(self):
        btb = BranchTargetBuffer()
        btb.insert(0, 0x10000, 0x20000)
        btb.insert(0, 0x10000, 0x30000)
        assert btb.lookup(0, 0x10000) == 0x30000
        assert btb.occupancy() == 1

    def test_paper_geometry(self):
        btb = BranchTargetBuffer(entries=256, assoc=4)
        assert btb.n_sets == 64

    def test_occupancy(self):
        btb = BranchTargetBuffer()
        for i in range(10):
            btb.insert(0, 0x10000 + 4 * i, 0x20000)
        assert btb.occupancy() == 10


class TestThreadTags:
    """Entries carry a thread id to avoid predicting phantom branches."""

    def test_threads_do_not_share_entries(self):
        btb = BranchTargetBuffer(tag_thread=True)
        btb.insert(0, 0x10000, 0x20000)
        assert btb.lookup(1, 0x10000) is None

    def test_untagged_ablation_shares(self):
        btb = BranchTargetBuffer(tag_thread=False)
        btb.insert(0, 0x10000, 0x20000)
        assert btb.lookup(1, 0x10000) == 0x20000  # phantom branch hazard

    def test_two_threads_distinct_targets(self):
        btb = BranchTargetBuffer(tag_thread=True)
        btb.insert(0, 0x10000, 0x20000)
        btb.insert(1, 0x10000, 0x30000)
        assert btb.lookup(0, 0x10000) == 0x20000
        assert btb.lookup(1, 0x10000) == 0x30000


class TestReplacement:
    def test_lru_eviction_within_set(self):
        btb = BranchTargetBuffer(entries=8, assoc=2)  # 4 sets
        set_stride = 4 * btb.n_sets  # PCs mapping to the same set
        pcs = [0x10000 + i * set_stride for i in range(3)]
        btb.insert(0, pcs[0], 1)
        btb.insert(0, pcs[1], 2)
        btb.insert(0, pcs[2], 3)  # evicts pcs[0]
        assert btb.lookup(0, pcs[0]) is None
        assert btb.lookup(0, pcs[1]) == 2
        assert btb.lookup(0, pcs[2]) == 3

    def test_lookup_refreshes_lru(self):
        btb = BranchTargetBuffer(entries=8, assoc=2)
        set_stride = 4 * btb.n_sets
        pcs = [0x10000 + i * set_stride for i in range(3)]
        btb.insert(0, pcs[0], 1)
        btb.insert(0, pcs[1], 2)
        btb.lookup(0, pcs[0])          # touch: pcs[1] becomes LRU
        btb.insert(0, pcs[2], 3)       # evicts pcs[1]
        assert btb.lookup(0, pcs[0]) == 1
        assert btb.lookup(0, pcs[1]) is None

    def test_capacity_never_exceeded(self):
        btb = BranchTargetBuffer(entries=16, assoc=4)
        for i in range(100):
            btb.insert(0, 0x10000 + 4 * i, i)
        assert btb.occupancy() <= 16
