"""Property-based tests for the branch-prediction substrate."""

from hypothesis import given, settings, strategies as st

from repro.branch.btb import BranchTargetBuffer
from repro.branch.pht import PatternHistoryTable
from repro.branch.ras import ReturnAddressStack


# ----------------------------------------------------------------------
# BTB vs a reference model with per-set LRU.
# ----------------------------------------------------------------------
@given(st.lists(
    st.tuples(st.integers(0, 1),      # thread
              st.integers(0, 15),     # pc index
              st.integers(0, 1),      # op: 0 insert, 1 lookup
              st.integers(0, 7)),     # target id
    max_size=120,
))
@settings(max_examples=60, deadline=None)
def test_btb_matches_reference_lru(ops):
    btb = BranchTargetBuffer(entries=8, assoc=2, tag_thread=True)
    # Reference: per-set ordered dict of (tid, pc) -> target.
    reference = [dict() for _ in range(btb.n_sets)]

    def ref_set(pc):
        return (pc >> 2) % btb.n_sets

    for tid, pci, op, target in ops:
        pc = 0x10000 + 4 * pci
        s = reference[ref_set(pc)]
        key = (tid, pc)
        if op == 0:
            if key in s:
                del s[key]
            elif len(s) >= 2:
                del s[next(iter(s))]  # evict LRU (insertion order)
            s[key] = target
            btb.insert(tid, pc, target)
        else:
            expected = s.get(key)
            if expected is not None:
                s[key] = s.pop(key)  # touch
            assert btb.lookup(tid, pc) == expected


# ----------------------------------------------------------------------
# PHT counters always stay saturated in [0, 3]; prediction is monotone
# in training.
# ----------------------------------------------------------------------
@given(st.lists(st.tuples(st.integers(0, 63), st.booleans()), max_size=300))
@settings(max_examples=50, deadline=None)
def test_pht_counters_bounded(updates):
    pht = PatternHistoryTable(entries=64, history_bits=4)
    history = 0
    for pci, taken in updates:
        pht.update(0x10000 + 4 * pci, history, taken)
        history = pht.push_history(history, taken)
        assert 0 <= history <= pht.history_mask
    assert all(0 <= v <= 3 for v in pht.table)


@given(st.integers(1, 40))
@settings(max_examples=30, deadline=None)
def test_pht_learns_constant_direction(n_training):
    pht = PatternHistoryTable()
    for _ in range(n_training):
        pht.update(0x10000, 0, True)
    if n_training >= 2:
        assert pht.predict(0x10000, 0)


# ----------------------------------------------------------------------
# RAS checkpoint/restore is idempotent and never corrupts entries the
# speculation didn't touch.
# ----------------------------------------------------------------------
@given(st.lists(st.integers(1, 10), min_size=1, max_size=8),
       st.lists(st.integers(1, 5), max_size=6))
@settings(max_examples=60, deadline=None)
def test_ras_restore_protects_untouched_entries(real_pushes, spec_pushes):
    ras = ReturnAddressStack(depth=12)
    for value in real_pushes:
        ras.push(value * 4)
    checkpoint = ras.checkpoint()
    for value in spec_pushes:
        ras.push(1000 + value)
    ras.restore(checkpoint)
    # Popping must reproduce the real pushes in reverse, as long as the
    # speculative depth never wrapped over them.
    if len(real_pushes) + len(spec_pushes) <= 12:
        for value in reversed(real_pushes):
            assert ras.pop() == value * 4
