"""Unit tests for the per-context return address stack."""

import pytest

from repro.branch.ras import ReturnAddressStack


class TestBasics:
    def test_pop_empty_returns_none(self):
        assert ReturnAddressStack().pop() is None

    def test_push_pop(self):
        ras = ReturnAddressStack()
        ras.push(0x10004)
        assert ras.pop() == 0x10004

    def test_lifo_order(self):
        ras = ReturnAddressStack()
        for addr in (1, 2, 3):
            ras.push(addr * 4)
        assert [ras.pop() for _ in range(3)] == [12, 8, 4]

    def test_paper_depth(self):
        assert ReturnAddressStack().depth == 12

    def test_len_tracks_entries(self):
        ras = ReturnAddressStack(depth=4)
        for i in range(3):
            ras.push(i)
        assert len(ras) == 3

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(depth=0)


class TestOverflow:
    """Deep recursion wraps the circular buffer: the oldest entries are
    silently overwritten, causing return mispredictions — as on real
    hardware (the xlisp behaviour)."""

    def test_overflow_overwrites_oldest(self):
        ras = ReturnAddressStack(depth=3)
        for addr in (10, 20, 30, 40):
            ras.push(addr)
        assert ras.pop() == 40
        assert ras.pop() == 30
        assert ras.pop() == 20
        # The wrapped slot now holds 40's residue, not 10.
        assert ras.pop() != 10

    def test_len_caps_at_depth(self):
        ras = ReturnAddressStack(depth=4)
        for i in range(10):
            ras.push(i)
        assert len(ras) == 4


class TestCheckpointing:
    def test_restore_discards_speculative_pushes(self):
        ras = ReturnAddressStack()
        ras.push(100)
        cp = ras.checkpoint()
        ras.push(200)  # speculative (wrong path)
        ras.push(300)
        ras.restore(cp)
        assert ras.pop() == 100

    def test_restore_replays_speculative_pops(self):
        ras = ReturnAddressStack()
        ras.push(100)
        ras.push(200)
        cp = ras.checkpoint()
        ras.pop()      # speculative pop
        ras.restore(cp)
        assert ras.pop() == 200
        assert ras.pop() == 100

    def test_nested_checkpoints(self):
        ras = ReturnAddressStack()
        ras.push(1)
        cp1 = ras.checkpoint()
        ras.push(2)
        cp2 = ras.checkpoint()
        ras.push(3)
        ras.restore(cp2)
        assert ras.pop() == 2
        ras.restore(cp1)
        assert ras.pop() == 1
