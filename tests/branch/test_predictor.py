"""Unit tests for the combined branch-prediction front end."""

import pytest

from repro.branch.predictor import BranchPredictor
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import INSTR_BYTES


def cond(target=0x10100):
    return Instruction(Opcode.BNEZ, rs1=1, target=target)


def jump(target=0x10200):
    return Instruction(Opcode.J, target=target)


def call(target=0x10300):
    return Instruction(Opcode.JAL, rd=31, target=target)


RET = Instruction(Opcode.RET, rs1=31)
JR = Instruction(Opcode.JR, rs1=9)


class TestConditionalBranches:
    def test_cold_predicts_not_taken(self):
        bp = BranchPredictor(1)
        pred = bp.predict(0, 0x10000, cond())
        assert not pred.taken
        assert not pred.redirect_at_decode

    def test_trained_branch_predicts_taken_with_btb_target(self):
        """After enough always-taken resolutions the direction predictor
        and BTB are both trained: redirect happens at fetch."""
        bp = BranchPredictor(1)
        instr = cond()
        # Train until the speculative history saturates (all-taken) and
        # the counter at that history is trained too.
        for _ in range(16):
            p = bp.predict(0, 0x10000, instr)
            bp.resolve(0, 0x10000, instr, p, True, instr.target)
            bp.recover(0, 0x10000, instr, p, True)
        pred = bp.predict(0, 0x10000, instr)
        assert pred.taken
        assert pred.target == instr.target
        assert not pred.redirect_at_decode  # BTB was trained by resolve

    def test_taken_with_btb_hit_redirects_at_fetch(self):
        bp = BranchPredictor(1)
        instr = cond()
        bp.btb.insert(0, 0x10000, instr.target)
        bp.pht.update(0x10000, 0, True)
        bp.pht.update(0x10000, 0, True)
        pred = bp.predict(0, 0x10000, instr)
        assert pred.taken and pred.target == instr.target
        assert not pred.redirect_at_decode and not pred.resolve_at_exec

    def test_taken_btb_miss_uses_decode_target(self):
        bp = BranchPredictor(1)
        instr = cond()
        bp.pht.update(0x10000, 0, True)
        bp.pht.update(0x10000, 0, True)
        pred = bp.predict(0, 0x10000, instr)
        assert pred.taken
        assert pred.redirect_at_decode
        assert pred.target == instr.target

    def test_speculative_history_updated(self):
        bp = BranchPredictor(1)
        h0 = bp.history_of(0)
        bp.pht.update(0x10000, 0, True)
        bp.pht.update(0x10000, 0, True)
        bp.predict(0, 0x10000, cond())
        assert bp.history_of(0) != h0 or h0 == bp.pht.push_history(h0, True)

    def test_history_is_per_thread(self):
        bp = BranchPredictor(2)
        bp.pht.update(0x10000, 0, True)
        bp.pht.update(0x10000, 0, True)
        bp.predict(0, 0x10000, cond())
        assert bp.history_of(1) == 0

    def test_shared_history_ablation(self):
        bp = BranchPredictor(2, shared_history=True)
        bp.pht.update(0x10000, 0, True)
        bp.pht.update(0x10000, 0, True)
        bp.predict(0, 0x10000, cond())
        assert bp.history_of(1) == bp.history_of(0) != 0


class TestJumps:
    def test_direct_jump_btb_miss_is_misfetch(self):
        bp = BranchPredictor(1)
        pred = bp.predict(0, 0x10000, jump())
        assert pred.taken and pred.redirect_at_decode
        assert pred.target == 0x10200

    def test_direct_jump_btb_hit(self):
        bp = BranchPredictor(1)
        bp.btb.insert(0, 0x10000, 0x10200)
        pred = bp.predict(0, 0x10000, jump())
        assert pred.taken and not pred.redirect_at_decode

    def test_indirect_jump_cold_resolves_at_exec(self):
        bp = BranchPredictor(1)
        pred = bp.predict(0, 0x10000, JR)
        assert pred.resolve_at_exec
        assert pred.target is None

    def test_indirect_jump_uses_btb(self):
        bp = BranchPredictor(1)
        bp.btb.insert(0, 0x10000, 0x10444)
        pred = bp.predict(0, 0x10000, JR)
        assert pred.taken and pred.target == 0x10444

    def test_predict_rejects_non_control(self):
        bp = BranchPredictor(1)
        with pytest.raises(ValueError):
            bp.predict(0, 0x10000, Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3))


class TestReturnStack:
    def test_call_pushes_return_address(self):
        bp = BranchPredictor(1)
        bp.predict(0, 0x10000, call())
        pred = bp.predict(0, 0x10300, RET)
        assert pred.taken
        assert pred.target == 0x10000 + INSTR_BYTES

    def test_return_with_empty_stack_resolves_at_exec(self):
        bp = BranchPredictor(1)
        pred = bp.predict(0, 0x10300, RET)
        assert pred.resolve_at_exec

    def test_ras_is_per_thread(self):
        bp = BranchPredictor(2)
        bp.predict(0, 0x10000, call())
        pred = bp.predict(1, 0x10300, RET)
        assert pred.resolve_at_exec  # thread 1's stack is empty

    def test_nested_calls(self):
        bp = BranchPredictor(1)
        bp.predict(0, 0x10000, call(0x10300))
        bp.predict(0, 0x10300, call(0x10400))
        assert bp.predict(0, 0x10400, RET).target == 0x10304
        assert bp.predict(0, 0x10304, RET).target == 0x10004


class TestRecovery:
    def test_recover_restores_history_with_actual_outcome(self):
        bp = BranchPredictor(1)
        instr = cond()
        pred = bp.predict(0, 0x10000, instr)  # predicts NT, pushes 0
        assert not pred.taken
        bp.recover(0, 0x10000, instr, pred, actual_taken=True)
        assert bp.history_of(0) == bp.pht.push_history(pred.history_before, True)

    def test_recover_unwinds_wrong_path_ras_damage(self):
        bp = BranchPredictor(1)
        bp.predict(0, 0x9000, call(0x10300))   # real call
        instr = cond()
        pred = bp.predict(0, 0x10000, instr)
        # Wrong path executes a bogus call and return.
        bp.predict(0, 0x20000, call(0x20300))
        bp.predict(0, 0x20300, RET)
        bp.predict(0, 0x20400, RET)            # pops the real entry!
        bp.recover(0, 0x10000, instr, pred, actual_taken=True)
        ret_pred = bp.predict(0, 0x10300, RET)
        assert ret_pred.target == 0x9004

    def test_recover_replays_own_call_push(self):
        bp = BranchPredictor(1)
        instr = call(0x10300)
        pred = bp.predict(0, 0x10000, instr)
        # Suppose this call itself needed recovery (e.g. an older
        # in-flight misprediction squashed it is NOT the case here —
        # recover is for the instruction itself, which replays its push).
        bp.recover(0, 0x10000, instr, pred, actual_taken=True)
        assert bp.predict(0, 0x10300, RET).target == 0x10004

    def test_resolve_trains_pht_with_fetch_time_history(self):
        bp = BranchPredictor(1)
        instr = cond()
        pred = bp.predict(0, 0x10000, instr)
        bp.resolve(0, 0x10000, instr, pred, True, instr.target)
        bp.resolve(0, 0x10000, instr, pred, True, instr.target)
        assert bp.pht.predict(0x10000, pred.history_before)

    def test_resolve_inserts_btb_on_taken(self):
        bp = BranchPredictor(1)
        instr = cond()
        pred = bp.predict(0, 0x10000, instr)
        bp.resolve(0, 0x10000, instr, pred, True, instr.target)
        assert bp.btb.lookup(0, 0x10000) == instr.target

    def test_resolve_skips_btb_on_not_taken(self):
        bp = BranchPredictor(1)
        instr = cond()
        pred = bp.predict(0, 0x10000, instr)
        bp.resolve(0, 0x10000, instr, pred, False, None)
        assert bp.btb.lookup(0, 0x10000) is None

    def test_returns_do_not_pollute_btb(self):
        bp = BranchPredictor(1)
        pred = bp.predict(0, 0x10300, RET)
        bp.resolve(0, 0x10300, RET, pred, True, 0x10004)
        assert bp.btb.lookup(0, 0x10300) is None


class TestPerfectMode:
    def test_perfect_follows_oracle(self):
        bp = BranchPredictor(1, perfect=True)
        instr = cond()
        pred = bp.predict(0, 0x10000, instr, oracle_taken=True,
                          oracle_target=instr.target)
        assert pred.taken and pred.target == instr.target
        assert not pred.redirect_at_decode and not pred.resolve_at_exec

    def test_perfect_not_taken(self):
        bp = BranchPredictor(1, perfect=True)
        pred = bp.predict(0, 0x10000, cond(), oracle_taken=False,
                          oracle_target=0x10004)
        assert not pred.taken

    def test_perfect_indirect(self):
        bp = BranchPredictor(1, perfect=True)
        pred = bp.predict(0, 0x10000, JR, oracle_taken=True,
                          oracle_target=0x12344)
        assert pred.taken and pred.target == 0x12344
