"""Integration tests: the full machine on real (synthetic) workloads.

These run short simulations across configurations and check global
invariants — forward progress, statistics consistency, resource
conservation — rather than exact numbers.
"""

import pytest

from repro.core.config import SMTConfig, scheme
from repro.core.simulator import Simulator
from repro.workloads.mixes import standard_mix

FAST = dict(warmup_cycles=300, measure_cycles=2500,
            functional_warmup_instructions=15000)


def run(config, rotation=0, **kwargs):
    budget = dict(FAST)
    budget.update(kwargs)
    sim = Simulator(config, standard_mix(config.n_threads, rotation))
    return sim, sim.run(**budget)


def check_register_conservation(sim):
    """Every physical register is free, architecturally mapped, or the
    old mapping of exactly one in-flight instruction."""
    for rf in (sim.renamer.int_file, sim.renamer.fp_file):
        free = set(rf.free_list)
        assert len(free) == len(rf.free_list), "duplicate free-list entries"
        mapped = {p for tmap in rf.maps for p in tmap}
        assert not (free & mapped), "freed register still mapped"
        held = set()
        for thread in sim.threads:
            for uop in thread.rob:
                if uop.dest_preg is not None:
                    held.add(uop.old_preg)
        accounted = free | mapped | held
        assert accounted == set(range(rf.physical)), (
            f"unaccounted registers: {set(range(rf.physical)) - accounted}"
        )


class TestForwardProgress:
    @pytest.mark.parametrize("n_threads", [1, 2, 4, 8])
    def test_commits_instructions(self, n_threads):
        _, result = run(SMTConfig(n_threads=n_threads))
        assert result.committed > 500
        assert result.ipc > 0.2

    def test_every_thread_progresses(self):
        _, result = run(SMTConfig(n_threads=8))
        assert len(result.committed_per_thread) == 8
        for tid, count in result.committed_per_thread.items():
            assert count > 0, f"thread {tid} starved"

    @pytest.mark.parametrize("policy", ["RR", "BRCOUNT", "MISSCOUNT",
                                        "ICOUNT", "IQPOSN"])
    def test_all_fetch_policies_run(self, policy):
        _, result = run(scheme(policy, 2, 8, n_threads=4))
        assert result.committed > 500

    @pytest.mark.parametrize("num1,num2", [(1, 8), (2, 4), (4, 2), (2, 8)])
    def test_all_partitionings_run(self, num1, num2):
        _, result = run(scheme("RR", num1, num2, n_threads=4))
        assert result.committed > 500

    @pytest.mark.parametrize("issue", ["OLDEST", "OPT_LAST", "SPEC_LAST",
                                       "BRANCH_FIRST"])
    def test_all_issue_policies_run(self, issue):
        _, result = run(SMTConfig(n_threads=4, issue_policy=issue))
        assert result.committed > 500

    def test_bigq(self):
        _, result = run(SMTConfig(n_threads=4, bigq=True))
        assert result.committed > 500

    def test_itag(self):
        _, result = run(SMTConfig(n_threads=4, itag=True))
        assert result.committed > 500

    def test_perfect_branch_prediction(self):
        _, result = run(SMTConfig(n_threads=4, perfect_branch_prediction=True))
        assert result.committed > 500
        assert result.branch_mispredict_rate == 0.0
        assert result.wrong_path_fetched_frac == 0.0

    def test_infinite_fus(self):
        _, result = run(SMTConfig(n_threads=4, infinite_fus=True))
        assert result.committed > 500

    def test_infinite_memory_bandwidth(self):
        _, result = run(SMTConfig(n_threads=4, infinite_memory_bandwidth=True))
        assert result.committed > 500

    @pytest.mark.parametrize("mode", ["no_pass_branch", "no_wrong_path"])
    def test_restricted_speculation(self, mode):
        _, result = run(SMTConfig(n_threads=2, speculation=mode))
        assert result.committed > 300

    def test_superscalar_pipeline(self):
        _, result = run(SMTConfig(n_threads=1, smt_pipeline=False))
        assert result.committed > 500

    def test_phys_regs_total(self):
        _, result = run(scheme("ICOUNT", 2, 8, n_threads=4,
                               phys_regs_total=200))
        assert result.committed > 500


class TestInvariants:
    def test_register_conservation_after_run(self):
        sim, _ = run(SMTConfig(n_threads=4))
        check_register_conservation(sim)

    def test_register_conservation_with_heavy_speculation(self):
        sim, _ = run(SMTConfig(n_threads=8))
        check_register_conservation(sim)

    def test_queue_entries_bounded(self):
        sim, _ = run(SMTConfig(n_threads=8))
        assert len(sim.int_queue) <= sim.cfg.iq_capacity
        assert len(sim.fp_queue) <= sim.cfg.iq_capacity

    def test_icount_counters_match_rob(self):
        sim, _ = run(scheme("ICOUNT", 2, 8, n_threads=4))
        from repro.core.uop import S_DECODED, S_FETCHED, S_QUEUED
        for thread in sim.threads:
            actual = sum(
                1 for u in thread.rob
                if u.state in (S_FETCHED, S_DECODED, S_QUEUED)
            )
            assert thread.unissued_count == actual

    def test_brcount_counters_match_rob(self):
        sim, _ = run(scheme("BRCOUNT", 1, 8, n_threads=4))
        from repro.core.uop import S_DONE
        for thread in sim.threads:
            actual = sum(
                1 for u in thread.rob
                if u.is_control and u.state != S_DONE
            )
            assert thread.unresolved_branches == actual

    def test_oracle_stays_in_sync(self):
        """After heavy squashing the correct-path fetch stream must
        still match the emulator's architectural path (the fetch unit
        asserts this internally; run long enough to exercise it)."""
        sim, result = run(SMTConfig(n_threads=2), measure_cycles=4000)
        assert result.committed > 1000

    def test_stats_fractions_in_range(self):
        _, result = run(SMTConfig(n_threads=8))
        for name in (
            "wrong_path_fetched_frac", "wrong_path_issued_frac",
            "squashed_optimistic_frac", "int_iq_full_frac",
            "fp_iq_full_frac", "out_of_registers_frac",
            "branch_mispredict_rate", "jump_mispredict_rate",
        ):
            value = getattr(result, name)
            assert 0.0 <= value <= 1.0, f"{name} = {value}"

    def test_ipc_bounded_by_widths(self):
        _, result = run(SMTConfig(n_threads=8))
        assert result.ipc <= 8.0  # fetch/decode bound

    def test_cache_stats_consistent(self):
        _, result = run(SMTConfig(n_threads=4))
        for cache in (result.icache, result.dcache, result.l2, result.l3):
            assert 0 <= cache.misses <= cache.accesses


class TestDeterminism:
    def test_same_seed_same_result(self):
        _, a = run(SMTConfig(n_threads=4))
        _, b = run(SMTConfig(n_threads=4))
        assert a.committed == b.committed
        assert a.ipc == b.ipc
        assert a.fetched_wrong_path == b.fetched_wrong_path \
            if hasattr(a, "fetched_wrong_path") else True

    def test_different_rotations_differ(self):
        _, a = run(SMTConfig(n_threads=2), rotation=0)
        _, b = run(SMTConfig(n_threads=2), rotation=1)
        assert a.committed != b.committed  # different programs


class TestQualitativeShapes:
    """Coarse sanity versions of the paper's headline results (the
    benchmarks assert these with bigger budgets)."""

    def test_smt_single_thread_close_to_superscalar(self):
        _, smt = run(SMTConfig(n_threads=1), measure_cycles=5000)
        _, ss = run(SMTConfig(n_threads=1, smt_pipeline=False),
                    measure_cycles=5000)
        assert smt.ipc > 0.75 * ss.ipc  # paper: within 2%

    def test_throughput_grows_with_threads(self):
        _, one = run(SMTConfig(n_threads=1), measure_cycles=5000)
        _, four = run(SMTConfig(n_threads=4), measure_cycles=5000)
        assert four.ipc > one.ipc

    def test_icount_beats_rr_at_8_threads(self):
        _, rr = run(scheme("RR", 2, 8, n_threads=8), measure_cycles=5000)
        _, icount = run(scheme("ICOUNT", 2, 8, n_threads=8),
                        measure_cycles=5000)
        assert icount.ipc > rr.ipc
