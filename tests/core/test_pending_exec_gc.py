"""Regression tests: the pending-execution map stays bounded.

``Simulator.pending_exec`` maps future execute cycles to the uops
scheduled for them.  Entries for past cycles are useless (the issue
stage only scans forward from the current cycle), so ``step()`` sweeps
them out every 1024 cycles; without the sweep a long-lived simulator
leaks one dict entry per squashed schedule slot.
"""

from repro.core.config import SMTConfig, scheme
from repro.core.simulator import Simulator
from repro.workloads.mixes import standard_mix


def _make(config):
    return Simulator(config, standard_mix(config.n_threads, 0))


class TestPendingExecGC:
    def test_pending_exec_bounded_over_long_run(self):
        sim = _make(scheme("ICOUNT", 2, 8, n_threads=2))
        sim.functional_warmup(3000)
        for _ in range(4096):
            sim.step()
        # Only the lookahead window (current cycle .. +exec_offset) plus
        # at most one GC period of stragglers may be populated.
        assert len(sim.pending_exec) <= sim.cfg.exec_offset + 1 + 1024
        assert all(c >= sim.cycle - 1024 for c in sim.pending_exec)

    def test_stale_entries_swept(self):
        sim = _make(SMTConfig(n_threads=1))
        sim.functional_warmup(2000)
        # Plant entries far in the past; the periodic sweep must drop
        # them within one GC period.
        sim.pending_exec[-5] = []
        sim.pending_exec[-6] = []
        for _ in range(1100):
            sim.step()
        assert -5 not in sim.pending_exec
        assert -6 not in sim.pending_exec

    def test_gc_keeps_future_entries(self):
        sim = _make(SMTConfig(n_threads=1))
        future = sim.cycle + 10_000
        sim.pending_exec[future] = []
        sim._gc_pending_exec()
        assert future in sim.pending_exec
