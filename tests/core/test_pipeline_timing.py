"""Pipeline timing tests: the paper's Figure 2 penalties must be
*emergent* from the stage structure, not hard-coded constants.

These tests drive the simulator with tiny hand-written programs, step it
cycle by cycle (no warmup), and inspect uop timestamps.
"""

import pytest

from repro.core.config import SMTConfig
from repro.core.simulator import Simulator
from repro.core.uop import S_COMMITTED, S_SQUASHED
from repro.isa.assembler import assemble
from repro.isa.program import TEXT_BASE


def make_sim(source: str, warm_data: bool = False, **config_kwargs) -> Simulator:
    """Build a 1-thread simulator with a warm I-side (so fetch flows
    from cycle 0) but a cold branch predictor (so first-execution
    mispredicts are deterministic)."""
    config_kwargs.setdefault("n_threads", 1)
    sim = Simulator(SMTConfig(**config_kwargs), [assemble(source)])
    thread = sim.threads[0]
    program = thread.program
    for pc in range(program.text_start, program.text_end, 64):
        sim.hierarchy.warm_access(0, thread.phys_addr(pc), True)
    if warm_data:
        start = 0x0100_0000
        # Warm at most 32 KiB (the L1 capacity) so early lines stay
        # resident rather than being evicted by the tail of the sweep.
        for addr in range(start, start + min(program.data.size, 1 << 15), 64):
            sim.hierarchy.warm_access(0, thread.phys_addr(addr), False)
    return sim


def committed_uops(sim):
    """All uops committed so far, in program order (helper)."""
    return [u for u in sim.all_committed] if hasattr(sim, "all_committed") else None


STRAIGHT_LINE = """
.text
_start:
    addi r1, r0, 1
    addi r2, r0, 2
    addi r3, r0, 3
    addi r4, r0, 4
loop:
    addi r5, r5, 1
    j loop
"""


class TestStageTimings:
    def test_front_end_stage_distances(self):
        """fetch -> decode -> rename/dispatch -> earliest issue is
        +1 per stage; first instructions issue at fetch + 3."""
        sim = make_sim(STRAIGHT_LINE)
        for _ in range(20):
            sim.step()
        thread = sim.threads[0]
        # ROB may have drained; find any instruction we can check from
        # the trace via still-in-flight entries, else re-run and capture.
        sim2 = make_sim(STRAIGHT_LINE)
        captured = []
        for _ in range(8):
            sim2.step()
            for u in sim2.threads[0].rob:
                if u not in captured:
                    captured.append(u)
        first = captured[0]
        assert first.fetch_c == 0
        assert first.decode_c == 1
        assert first.dispatch_c == 2
        assert first.issue_c == 3

    def test_exec_offset_smt(self):
        """Two register-read stages: issue -> exec distance is 3."""
        sim = make_sim(STRAIGHT_LINE, smt_pipeline=True)
        captured = []
        for _ in range(10):
            sim.step()
            for u in sim.threads[0].rob:
                if u not in captured:
                    captured.append(u)
        first = captured[0]
        assert first.exec_c - first.issue_c == 3

    def test_exec_offset_superscalar(self):
        sim = make_sim(STRAIGHT_LINE, smt_pipeline=False)
        captured = []
        for _ in range(10):
            sim.step()
            for u in sim.threads[0].rob:
                if u not in captured:
                    captured.append(u)
        first = captured[0]
        assert first.exec_c - first.issue_c == 2

    def test_dependent_single_cycle_ops_issue_back_to_back(self):
        """Latency-1 chains must not stall (Section 2: the longer
        pipeline does not increase inter-instruction latency)."""
        source = """
        .text
        _start:
            addi r1, r0, 1
            addi r1, r1, 1
            addi r1, r1, 1
        loop:
            j loop
        """
        sim = make_sim(source)
        captured = []
        for _ in range(12):
            sim.step()
            for u in sim.threads[0].rob:
                if u not in captured and not u.wrong_path:
                    captured.append(u)
        chain = [u for u in captured if u.instr.opcode.mnemonic == "addi"]
        assert chain[1].issue_c == chain[0].issue_c + 1
        assert chain[2].issue_c == chain[1].issue_c + 1


class TestMispredictPenalty:
    """The branch misprediction penalty: 7 cycles on the SMT pipeline,
    6 on the conventional superscalar pipeline (Figure 2)."""

    # beqz r0 is always taken; a cold PHT predicts (weakly) not-taken,
    # so the first execution is a guaranteed mispredict.
    MISPREDICT = """
    .text
    _start:
        beqz r0, target
        addi r1, r1, 1
        addi r2, r2, 1
    target:
        addi r3, r3, 1
    loop:
        j loop
    """

    def _first_mispredict_refetch(self, sim):
        branch = None
        target_uop = None
        target_pc = TEXT_BASE + 12
        for _ in range(40):
            sim.step()
            for u in sim.threads[0].rob:
                if u.is_cond_branch and u.mispredicted and branch is None:
                    branch = u
                if u.pc == target_pc and not u.wrong_path and target_uop is None:
                    target_uop = u
            if branch is not None and target_uop is not None:
                break
        assert branch is not None and target_uop is not None
        return branch, target_uop

    def test_smt_penalty_is_7_cycles(self):
        sim = make_sim(self.MISPREDICT, smt_pipeline=True)
        branch, target = self._first_mispredict_refetch(sim)
        assert branch.fetch_c == 0
        assert branch.issue_c == 3      # issued immediately (r0 ready)
        assert branch.exec_c == 6
        assert target.fetch_c == 7      # mispredict penalty 7

    def test_superscalar_penalty_is_6_cycles(self):
        sim = make_sim(self.MISPREDICT, smt_pipeline=False)
        branch, target = self._first_mispredict_refetch(sim)
        assert branch.exec_c == 5
        assert target.fetch_c == 6      # mispredict penalty 6

    def test_wrong_path_instructions_squashed(self):
        sim = make_sim(self.MISPREDICT)
        wrong_path = []
        for _ in range(40):
            sim.step()
            for u in sim.threads[0].rob:
                if u.wrong_path and u not in wrong_path:
                    wrong_path.append(u)
        assert wrong_path  # the two addi after the branch were fetched
        for u in wrong_path:
            assert u.state == S_SQUASHED

    def test_itag_adds_a_cycle(self):
        sim = make_sim(self.MISPREDICT, smt_pipeline=True, itag=True)
        branch, target = self._first_mispredict_refetch(sim)
        assert target.fetch_c - branch.exec_c == 2  # 7 + 1 total


class TestMisfetchPenalty:
    """A taken direct jump with a cold BTB redirects at decode:
    2 cycles of lost fetch (3 with ITAG)."""

    MISFETCH = """
    .text
    _start:
        j target
        addi r1, r1, 1
    target:
        addi r2, r2, 1
    loop:
        j loop
    """

    def _target_fetch_cycle(self, sim):
        target_pc = TEXT_BASE + 8
        for _ in range(30):
            sim.step()
            for u in sim.threads[0].rob:
                if u.pc == target_pc and not u.wrong_path:
                    return u.fetch_c
        pytest.fail("target never fetched")

    def test_misfetch_costs_2_cycles(self):
        sim = make_sim(self.MISFETCH)
        assert self._target_fetch_cycle(sim) == 2

    def test_itag_misfetch_costs_3_cycles(self):
        sim = make_sim(self.MISFETCH, itag=True)
        assert self._target_fetch_cycle(sim) == 3

    def test_btb_hit_removes_the_bubble(self):
        """Once the BTB knows the target, the jump redirects at fetch."""
        source = """
        .text
        _start:
            addi r9, r9, 1
        loop:
            addi r1, r1, 1
            j loop
        """
        sim = make_sim(source)
        for _ in range(60):
            sim.step()
        fetches = {}
        sim2 = make_sim(source)
        seen = []
        for _ in range(60):
            sim2.step()
            for u in sim2.threads[0].rob:
                if u not in seen:
                    seen.append(u)
        jumps = [u for u in seen if u.instr.opcode.mnemonic == "j"]
        addis = [u for u in seen if u.pc == TEXT_BASE + 4]
        # Late loop iterations: addi refetched the cycle right after the
        # preceding jump fetched (no misfetch bubble).
        late_jump = jumps[-2]
        following = [a for a in addis if a.fetch_c > late_jump.fetch_c]
        assert following
        assert following[0].fetch_c == late_jump.fetch_c + 1
