"""Unit tests for the per-context thread state."""

import pytest

from repro.core.thread import ADDRESS_SPACE_STRIDE, ThreadContext
from repro.isa.assembler import assemble
from repro.isa.program import DATA_BASE


@pytest.fixture
def program():
    return assemble("""
    .data
    buf: .space 64
    .text
    _start:
        li r1, buf
    loop:
        ld r2, 0(r1)
        addi r3, r3, 1
        j loop
    """)


class TestOracle:
    def test_peek_does_not_consume(self, program):
        thread = ThreadContext(0, program)
        first = thread.oracle_peek()
        assert thread.oracle_peek() is first
        assert thread.oracle_pop() is first

    def test_pop_advances(self, program):
        thread = ThreadContext(0, program)
        a = thread.oracle_pop()
        b = thread.oracle_pop()
        assert b.pc == a.next_pc

    def test_oracle_matches_fetch_pc_initially(self, program):
        thread = ThreadContext(0, program)
        assert thread.oracle_peek().pc == thread.fetch_pc


class TestPhysicalAddressing:
    def test_distinct_address_spaces(self, program):
        t0 = ThreadContext(0, program)
        t1 = ThreadContext(1, program)
        a0 = t0.phys_addr(DATA_BASE)
        a1 = t1.phys_addr(DATA_BASE)
        assert abs(a1 - a0) >= ADDRESS_SPACE_STRIDE // 2

    def test_mapping_is_deterministic(self, program):
        t = ThreadContext(3, program)
        assert t.phys_addr(0x12345678 & ~7) == t.phys_addr(0x12345678 & ~7)

    def test_mapping_is_injective_within_thread(self, program):
        """Page colouring must never alias two virtual pages."""
        t = ThreadContext(2, program)
        seen = {}
        for page in range(0, 4096):
            vaddr = page * 8192
            p = t.phys_addr(vaddr)
            assert p not in seen, f"pages {seen[p]} and {page} alias"
            seen[p] = page

    def test_page_offset_preserved(self, program):
        t = ThreadContext(1, program)
        base = t.phys_addr(0x10000)
        assert t.phys_addr(0x10008) == base + 8
        assert t.phys_addr(0x10000 + 8191) == base + 8191

    def test_colours_differ_across_threads_somewhere(self, program):
        """The whole point of the colouring: identical virtual layouts
        must not land on identical cache sets for every thread pair."""
        threads = [ThreadContext(tid, program) for tid in range(8)]
        def l1_set(t, vaddr):
            return (t.phys_addr(vaddr) >> 6) % 512
        vaddrs = [0x10000 + i * 8192 for i in range(16)]
        collisions = 0
        pairs = 0
        for i in range(8):
            for j in range(i + 1, 8):
                for v in vaddrs:
                    pairs += 1
                    collisions += l1_set(threads[i], v) == l1_set(threads[j], v)
        assert collisions < pairs  # not all collide


class TestCounters:
    def test_misscount_prunes_completed(self, program):
        thread = ThreadContext(0, program)
        thread.outstanding_misses = [10, 20, 300]
        assert thread.misscount(cycle=50) == 1
        assert thread.outstanding_misses == [300]

    def test_misscount_empty(self, program):
        assert ThreadContext(0, program).misscount(0) == 0


class TestWrongPathAddresses:
    def test_deterministic(self, program):
        thread = ThreadContext(0, program)
        assert (thread.wrong_path_load_address(0x10040, 5)
                == thread.wrong_path_load_address(0x10040, 5))

    def test_within_data_region(self, program):
        thread = ThreadContext(0, program)
        for seq in range(50):
            addr = thread.wrong_path_load_address(0x10000 + 4 * seq, seq)
            assert DATA_BASE <= addr < DATA_BASE + program.data.size
            assert addr % 8 == 0

    def test_near_recent_data(self, program):
        thread = ThreadContext(0, program)
        thread.last_data_addr = DATA_BASE + 8192
        addr = thread.wrong_path_load_address(0x10100, 7)
        assert abs(addr - thread.last_data_addr) <= 4096
