"""Fetch-partitioning properties (the paper's ``alg.num1.num2``
schemes): over randomized runs, no cycle may fetch from more than
``num1`` threads, take more than ``num2`` instructions from any one
thread, or exceed the fetch width in total — and fetch blocks from
different threads must never interleave in the fetch buffer."""

import pytest

from repro.core.config import scheme
from repro.core.simulator import Simulator
from repro.workloads.mixes import standard_mix

SCHEMES = [
    ("RR", 1, 8),
    ("RR", 2, 4),
    ("RR", 4, 2),
    ("RR", 2, 8),
    ("ICOUNT", 1, 8),
    ("ICOUNT", 2, 8),
    ("ICOUNT", 4, 2),
    ("BRCOUNT", 2, 8),
    ("MISSCOUNT", 2, 4),
    ("IQPOSN", 2, 8),
]


def _run_observed(policy, num1, num2, n_threads, rotation, cycles=500):
    """Step a machine, recording per-cycle per-thread fetch counts
    (observed via each thread's fetch sequence counter) and the fetch
    buffer's thread-run structure."""
    config = scheme(policy, num1, num2, n_threads=n_threads)
    sim = Simulator(config, standard_mix(n_threads, rotation))
    per_cycle = []
    runs_per_cycle = []
    prev = [t.next_seq for t in sim.threads]
    for _ in range(cycles):
        cycle = sim.cycle
        sim.step()
        now = [t.next_seq for t in sim.threads]
        per_cycle.append([n - p for n, p in zip(now, prev)])
        prev = now
        tids = []
        for uop in sim.fetch_buffer:
            if uop.fetch_c == cycle and (not tids or tids[-1] != uop.tid):
                tids.append(uop.tid)
        runs_per_cycle.append(tids)
    return config, per_cycle, runs_per_cycle


@pytest.mark.parametrize("policy,num1,num2", SCHEMES)
@pytest.mark.parametrize("n_threads,rotation", [(4, 0), (8, 1)])
def test_partition_bounds_hold_every_cycle(policy, num1, num2,
                                           n_threads, rotation):
    config, per_cycle, _ = _run_observed(policy, num1, num2,
                                         n_threads, rotation)
    fetched_something = False
    for counts in per_cycle:
        total = sum(counts)
        fetched_something = fetched_something or total > 0
        assert total <= config.fetch_width
        assert sum(1 for c in counts if c) <= num1, \
            f"{policy}.{num1}.{num2}: too many threads fetched"
        assert max(counts) <= num2, \
            f"{policy}.{num1}.{num2}: per-thread block too large"
        assert min(counts) >= 0
    assert fetched_something


@pytest.mark.parametrize("policy,num1,num2", SCHEMES)
def test_fetch_blocks_never_interleave(policy, num1, num2):
    _, _, runs_per_cycle = _run_observed(policy, num1, num2, 4, 0)
    for tids in runs_per_cycle:
        assert len(tids) == len(set(tids)), (
            f"{policy}.{num1}.{num2}: one thread's fetch block split "
            f"around another's: {tids}"
        )
        assert len(tids) <= num1


@pytest.mark.parametrize("n_threads", [1, 2])
def test_partition_bounds_with_few_threads(n_threads):
    # num1 larger than the thread count must degrade gracefully.
    config, per_cycle, _ = _run_observed("ICOUNT", 4, 2, n_threads, 0)
    for counts in per_cycle:
        assert sum(1 for c in counts if c) <= n_threads
        assert max(counts) <= 2
        assert sum(counts) <= config.fetch_width
