"""Unit tests for the machine configuration."""

import pytest

from repro.core.config import SMTConfig, scheme


class TestDefaults:
    """Defaults must be the paper's baseline machine (Section 2.1)."""

    def test_fetch_scheme_is_rr_1_8(self):
        cfg = SMTConfig()
        assert cfg.scheme_name == "RR.1.8"

    def test_functional_units(self):
        cfg = SMTConfig()
        assert cfg.int_units == 6
        assert cfg.ls_units == 4
        assert cfg.fp_units == 3

    def test_queue_sizes(self):
        cfg = SMTConfig()
        assert cfg.iq_size == 32
        assert cfg.iq_capacity == 32

    def test_excess_registers(self):
        assert SMTConfig().excess_registers == 100

    def test_physical_registers_formula(self):
        """Paper: 132 for 1 thread, 356 for 8 threads."""
        assert SMTConfig(n_threads=1).physical_registers == 132
        assert SMTConfig(n_threads=8).physical_registers == 356

    def test_predictor_geometry(self):
        cfg = SMTConfig()
        assert cfg.btb_entries == 256
        assert cfg.btb_assoc == 4
        assert cfg.pht_entries == 2048
        assert cfg.ras_depth == 12


class TestPipelines:
    def test_smt_pipeline_exec_offset(self):
        assert SMTConfig(smt_pipeline=True).exec_offset == 3

    def test_superscalar_exec_offset(self):
        assert SMTConfig(smt_pipeline=False).exec_offset == 2

    def test_misfetch_penalty(self):
        assert SMTConfig().misfetch_penalty == 2
        assert SMTConfig(itag=True).misfetch_penalty == 3


class TestDerived:
    def test_bigq_doubles_capacity_not_window(self):
        cfg = SMTConfig(bigq=True)
        assert cfg.iq_capacity == 64
        assert cfg.iq_size == 32

    def test_phys_regs_total_override(self):
        cfg = SMTConfig(n_threads=4, phys_regs_total=200)
        assert cfg.physical_registers == 200

    def test_with_options(self):
        cfg = SMTConfig()
        other = cfg.with_options(n_threads=4, itag=True)
        assert other.n_threads == 4 and other.itag
        assert cfg.n_threads == 8 and not cfg.itag  # original untouched

    def test_scheme_helper(self):
        cfg = scheme("ICOUNT", 2, 8, n_threads=4)
        assert cfg.scheme_name == "ICOUNT.2.8"
        assert cfg.n_threads == 4


class TestValidation:
    def test_bad_policy(self):
        with pytest.raises(ValueError):
            SMTConfig(fetch_policy="LIFO")

    def test_bad_issue_policy(self):
        with pytest.raises(ValueError):
            SMTConfig(issue_policy="RANDOM")

    def test_bad_speculation_mode(self):
        with pytest.raises(ValueError):
            SMTConfig(speculation="none")

    def test_thread_range(self):
        with pytest.raises(ValueError):
            SMTConfig(n_threads=0)

    def test_ls_subset_of_int(self):
        with pytest.raises(ValueError):
            SMTConfig(ls_units=7, int_units=6)

    def test_phys_regs_total_must_cover_architectural(self):
        with pytest.raises(ValueError):
            SMTConfig(n_threads=8, phys_regs_total=256)

    def test_fetch_partition_positive(self):
        with pytest.raises(ValueError):
            SMTConfig(fetch_threads=0)
