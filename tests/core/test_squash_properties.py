"""Property-based stress tests for the squash machinery.

Branch-heavy programs with cold predictors produce constant
mispredicts, wrong paths, and recovery.  Under that stress, the
architectural stream, the predictor's speculative state, and the
register free lists must all stay coherent.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.config import SMTConfig
from repro.core.simulator import Simulator
from repro.isa.assembler import assemble
from repro.isa.emulator import Emulator


def branchy_program(seed: int, n_blocks: int):
    """A random web of forward/backward branches driven by a counter
    (deterministic but erratic control flow)."""
    rng = random.Random(seed)
    lines = [".text", "_start:", "    li r1, 1"]
    for b in range(n_blocks):
        lines.append(f"blk_{b}:")
        lines.append(f"    addi r2, r2, 1")
        lines.append(f"    andi r3, r2, {rng.choice([1, 3, 7])}")
        target = rng.randrange(n_blocks)
        op = rng.choice(["beqz", "bnez"])
        lines.append(f"    {op} r3, blk_{target}")
    lines.append("    j _start")
    return assemble("\n".join(lines))


@given(st.integers(0, 2**31), st.integers(3, 10))
@settings(max_examples=12, deadline=None, derandomize=True)
def test_branch_storms_keep_streams_coherent(seed, n_blocks):
    program = branchy_program(seed, n_blocks)
    sim = Simulator(SMTConfig(n_threads=1), [program])
    # Warm the I-side so the storm starts immediately.
    thread = sim.threads[0]
    for pc in range(program.text_start, program.text_end, 64):
        sim.hierarchy.warm_access(0, thread.phys_addr(pc), True)
    committed = []
    sim.commit_listener = lambda uop: committed.append(uop.pc)
    for _ in range(500):
        sim.step()
    assert committed, "no progress under branch storm"
    oracle = Emulator(program)
    expected = [oracle.step().pc for _ in range(len(committed))]
    assert committed == expected
    # Register conservation after heavy squashing.
    for rf in (sim.renamer.int_file, sim.renamer.fp_file):
        free = set(rf.free_list)
        mapped = {p for m in rf.maps for p in m}
        held = {u.old_preg for u in thread.rob if u.dest_preg is not None}
        assert free | mapped | held == set(range(rf.physical))
    # Counter coherence.
    from repro.core.uop import S_DECODED, S_FETCHED, S_QUEUED
    live_unissued = sum(
        1 for u in thread.rob
        if u.state in (S_FETCHED, S_DECODED, S_QUEUED)
    )
    assert thread.unissued_count == live_unissued


@given(st.integers(0, 2**31))
@settings(max_examples=8, deadline=None, derandomize=True)
def test_branch_storm_with_two_threads(seed):
    programs = [branchy_program(seed, 5), branchy_program(seed + 1, 5)]
    sim = Simulator(SMTConfig(n_threads=2, fetch_threads=2), programs)
    for thread in sim.threads:
        program = thread.program
        for pc in range(program.text_start, program.text_end, 64):
            sim.hierarchy.warm_access(thread.tid, thread.phys_addr(pc), True)
    per_thread = {0: [], 1: []}
    sim.commit_listener = lambda u: per_thread[u.tid].append(u.pc)
    for _ in range(500):
        sim.step()
    for tid, pcs in per_thread.items():
        assert pcs, f"thread {tid} starved"
        oracle = Emulator(sim.threads[tid].program)
        expected = [oracle.step().pc for _ in range(len(pcs))]
        assert pcs == expected
