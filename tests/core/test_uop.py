"""Unit tests for the dynamic instruction record."""

from repro.core.uop import (
    S_COMMITTED,
    S_FETCHED,
    S_SQUASHED,
    STATE_NAMES,
    Uop,
)
from repro.isa.instructions import Instruction, Opcode, RegFile


def test_initial_state():
    uop = Uop(2, 7, 0x10040, Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3),
              wrong_path=False)
    assert uop.state == S_FETCHED
    assert uop.tid == 2 and uop.seq == 7
    assert uop.issue_c == -1 and uop.exec_c == -1
    assert not uop.iq_freed
    assert uop.squash_count == 0


def test_cached_predicates_match_instruction():
    cases = [
        (Instruction(Opcode.LD, rd=1, rs1=2), "is_load"),
        (Instruction(Opcode.ST, rs1=1, rs2=2), "is_store"),
        (Instruction(Opcode.BNEZ, rs1=1, target=0x10000), "is_cond_branch"),
        (Instruction(Opcode.J, target=0x10000), "is_control"),
        (Instruction(Opcode.FADD, rd=1, rs1=2, rs2=3, rd_file=RegFile.FP,
                     rs1_file=RegFile.FP, rs2_file=RegFile.FP), "is_fp_op"),
    ]
    for instr, attribute in cases:
        uop = Uop(0, 0, 0x10000, instr, False)
        assert getattr(uop, attribute)


def test_latency_cached():
    uop = Uop(0, 0, 0x10000, Instruction(Opcode.MUL, rd=1, rs1=2, rs2=3),
              False)
    assert uop.latency == 8


def test_repr_mentions_state_and_path():
    uop = Uop(1, 3, 0x10004, Instruction(Opcode.NOP), wrong_path=True)
    uop.state = S_SQUASHED
    text = repr(uop)
    assert "squashed" in text and "WP" in text


def test_state_names_cover_all_states():
    for state in (S_FETCHED, S_COMMITTED, S_SQUASHED):
        assert state in STATE_NAMES


def test_slots_prevent_arbitrary_attributes():
    uop = Uop(0, 0, 0x10000, Instruction(Opcode.NOP), False)
    try:
        uop.not_a_field = 1
    except AttributeError:
        pass
    else:
        raise AssertionError("__slots__ should reject unknown attributes")
