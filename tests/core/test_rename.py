"""Unit tests for register renaming."""

import pytest

from repro.core.rename import NEVER, RegisterFile, Renamer
from repro.core.uop import Uop
from repro.isa.instructions import Instruction, Opcode, RegFile


def make_uop(instr, tid=0, seq=0):
    return Uop(tid, seq, 0x10000, instr, wrong_path=False)


def add(rd=1, rs1=2, rs2=3):
    return make_uop(Instruction(Opcode.ADD, rd=rd, rs1=rs1, rs2=rs2))


class TestRegisterFile:
    def test_architectural_mapping(self):
        rf = RegisterFile(n_threads=2, physical=100)
        assert rf.lookup(0, 0) == 0
        assert rf.lookup(1, 0) == 32
        assert rf.free_count == 100 - 64

    def test_needs_more_than_architectural(self):
        with pytest.raises(ValueError):
            RegisterFile(n_threads=2, physical=64)

    def test_allocate_exhausts(self):
        rf = RegisterFile(n_threads=1, physical=34)
        assert rf.allocate() is not None
        assert rf.allocate() is not None
        assert rf.allocate() is None

    def test_release_recycles(self):
        rf = RegisterFile(n_threads=1, physical=33)
        p = rf.allocate()
        assert rf.allocate() is None
        rf.release(p)
        assert rf.allocate() == p


class TestRename:
    def test_dest_gets_fresh_preg(self):
        r = Renamer(1, 132)
        uop = add()
        assert r.rename(uop)
        assert uop.dest_preg is not None
        assert uop.dest_preg >= 32
        assert uop.old_preg == 1  # architectural mapping of r1

    def test_sources_resolve_to_current_mapping(self):
        r = Renamer(1, 132)
        first = add(rd=5)
        r.rename(first)
        second = make_uop(Instruction(Opcode.ADD, rd=6, rs1=5, rs2=5))
        r.rename(second)
        assert second.src_pregs == (
            (first.dest_preg, False), (first.dest_preg, False)
        )

    def test_threads_have_independent_maps(self):
        r = Renamer(2, 200)
        a = make_uop(Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3), tid=0)
        b = make_uop(Instruction(Opcode.ADD, rd=6, rs1=1, rs2=1), tid=1)
        r.rename(a)
        r.rename(b)
        # Thread 1's r1 is still its architectural register.
        assert b.src_pregs[0][0] == 32 + 1

    def test_fp_and_int_files_separate(self):
        r = Renamer(1, 132)
        fp = make_uop(Instruction(Opcode.FADD, rd=1, rs1=2, rs2=3,
                                  rd_file=RegFile.FP, rs1_file=RegFile.FP,
                                  rs2_file=RegFile.FP))
        r.rename(fp)
        assert fp.dest_is_fp
        assert r.int_file.lookup(0, 1) == 1  # int map untouched

    def test_out_of_registers_returns_false_without_side_effects(self):
        r = Renamer(1, 33)  # one single excess register
        first = add(rd=1)
        assert r.rename(first)
        second = add(rd=2)
        assert not r.rename(second)
        assert second.dest_preg is None
        assert r.int_file.lookup(0, 2) == 2  # mapping unchanged

    def test_store_needs_no_destination(self):
        r = Renamer(1, 33)
        store = make_uop(Instruction(Opcode.ST, rs1=1, rs2=2))
        first = add()
        r.rename(first)           # uses the only excess register
        assert r.rename(store)    # still renames fine


class TestCommitAndRollback:
    def test_commit_frees_old_mapping(self):
        r = Renamer(1, 133)
        uop = add(rd=1)
        r.rename(uop)
        before = r.int_file.free_count
        r.commit(uop)
        assert r.int_file.free_count == before + 1
        assert 1 in r.int_file.free_list  # old architectural r1 freed

    def test_rollback_restores_mapping_and_frees(self):
        r = Renamer(1, 133)
        uop = add(rd=1)
        r.rename(uop)
        allocated = uop.dest_preg
        r.rollback(uop)
        assert r.int_file.lookup(0, 1) == 1
        assert allocated in r.int_file.free_list

    def test_rollback_in_reverse_order(self):
        r = Renamer(1, 140)
        a, b = add(rd=1), add(rd=1)
        r.rename(a)
        r.rename(b)
        r.rollback(b)
        assert r.int_file.lookup(0, 1) == a.dest_preg
        r.rollback(a)
        assert r.int_file.lookup(0, 1) == 1

    def test_conservation_after_mixed_operations(self):
        r = Renamer(2, 200)
        uops = []
        for i in range(20):
            u = make_uop(Instruction(Opcode.ADD, rd=i % 8 + 1, rs1=2, rs2=3),
                         tid=i % 2, seq=i)
            assert r.rename(u)
            uops.append(u)
        for u in uops[:10]:
            r.commit(u)
        for u in reversed(uops[10:]):
            r.rollback(u)
        assert r.check_conservation()
        # Everything either free or architecturally mapped.
        mapped = {p for m in r.int_file.maps for p in m}
        free = set(r.int_file.free_list)
        assert mapped | free == set(range(200))


class TestWakeup:
    def test_set_and_retract(self):
        r = Renamer(1, 133)
        uop = add()
        r.rename(uop)
        r.set_wakeup(uop, 42)
        assert r.file_for(False).ready[uop.dest_preg] == 42
        r.retract_wakeup(uop)
        assert r.file_for(False).ready[uop.dest_preg] == NEVER

    def test_sources_ready_semantics(self):
        r = Renamer(1, 140)
        producer = add(rd=4)
        r.rename(producer)
        consumer = make_uop(Instruction(Opcode.ADD, rd=5, rs1=4, rs2=4))
        r.rename(consumer)
        assert not r.sources_ready(consumer, 100)
        r.set_wakeup(producer, 50)
        assert not r.sources_ready(consumer, 49)
        assert r.sources_ready(consumer, 50)

    def test_architectural_registers_ready_from_start(self):
        r = Renamer(1, 132)
        consumer = add()
        r.rename(consumer)
        assert r.sources_ready(consumer, 0)

    def test_producer_tracking(self):
        r = Renamer(1, 133)
        uop = add()
        r.rename(uop)
        assert r.file_for(False).producer[uop.dest_preg] is uop
        r.confirm_producer(uop)
        assert r.file_for(False).producer[uop.dest_preg] is None
