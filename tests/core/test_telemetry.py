"""Tests for the interval telemetry sampler."""

import pytest

from repro.core.config import scheme
from repro.core.simulator import Simulator
from repro.core.telemetry import TelemetrySample, TelemetrySampler
from repro.workloads.mixes import standard_mix

from tests.core.test_pipeline_timing import make_sim

LOOP = """
.text
_start:
    addi r1, r0, 1
loop:
    addi r2, r2, 1
    addi r3, r3, 1
    beqz r0, loop
"""


def stepped_sim(cycles=0, source=LOOP):
    sim = make_sim(source)
    for _ in range(cycles):
        sim.step()
    return sim


class TestSampling:
    def test_intervals_tile_the_run(self):
        sim = stepped_sim()
        sampler = TelemetrySampler(sim, interval=25)
        for _ in range(100):
            sim.step()
        assert len(sampler.samples) == 4
        assert [s.cycle_start for s in sampler.samples] == [0, 25, 50, 75]
        assert all(s.cycles == 25 for s in sampler.samples)

    def test_commit_counts_match_listener_truth(self):
        sim = stepped_sim()
        commits = []
        sim.commit_listener = commits.append
        sampler = TelemetrySampler(sim, interval=20)
        for _ in range(100):
            sim.step()
        sampler.finish()
        assert sum(s.committed for s in sampler.samples) == len(commits)
        # The chained listener still saw every commit.
        assert commits

    def test_fetched_counts_match_sequence_numbers(self):
        sim = stepped_sim()
        sampler = TelemetrySampler(sim, interval=30)
        for _ in range(90):
            sim.step()
        fetched = sum(s.fetched for s in sampler.samples)
        assert fetched == sim.threads[0].next_seq
        assert fetched > 0

    def test_icount_and_queue_population_sampled(self):
        sim = stepped_sim()
        sampler = TelemetrySampler(sim, interval=10)
        for _ in range(60):
            sim.step()
        sample = sampler.samples[-1]
        assert len(sample.icount) == 1
        assert sample.int_iq >= 0 and sample.fp_iq >= 0
        # The loop keeps the machine busy: some interval holds work.
        assert any(s.int_iq > 0 or s.icount[0] > 0 for s in sampler.samples)

    def test_fetch_share_sums_to_one_when_fetching(self):
        config = scheme("ICOUNT", 2, 8, n_threads=2)
        sim = Simulator(config, standard_mix(2, 0))
        sampler = TelemetrySampler(sim, interval=50)
        for _ in range(200):
            sim.step()
        for sample in sampler.samples:
            assert len(sample.fetched_per_thread) == 2
            if sample.fetched:
                assert sum(sample.fetch_share) == pytest.approx(1.0)

    def test_finish_closes_partial_interval(self):
        sim = stepped_sim()
        sampler = TelemetrySampler(sim, interval=1000)
        for _ in range(37):
            sim.step()
        assert sampler.samples == []
        sampler.finish()
        assert len(sampler.samples) == 1
        assert sampler.samples[0].cycle_end == 37

    def test_measuring_flag_tracks_stats_window(self):
        config = scheme("ICOUNT", 2, 8, n_threads=1)
        sim = Simulator(config, standard_mix(1, 0))
        sampler = TelemetrySampler(sim, interval=100)
        sim.run(warmup_cycles=200, measure_cycles=400,
                functional_warmup_instructions=2000)
        sampler.finish()
        flags = [s.measuring for s in sampler.samples]
        assert False in flags and True in flags
        assert sampler.measured() == [
            s for s in sampler.samples if s.measuring
        ]
        # Issued deltas survive the stats reset at the window edge.
        assert all(s.issued >= 0 for s in sampler.samples)
        assert sum(s.issued for s in sampler.measured()) > 0

    def test_max_samples_cap(self):
        sim = stepped_sim()
        sampler = TelemetrySampler(sim, interval=1, max_samples=5)
        for _ in range(50):
            sim.step()
        assert len(sampler.samples) == 5

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            TelemetrySampler(stepped_sim(), interval=0)


class TestAttachDetach:
    def test_detached_simulator_has_no_hook(self):
        sim = stepped_sim()
        assert sim.telemetry is None
        sampler = TelemetrySampler(sim, interval=10)
        assert sim.telemetry is sampler
        sampler.detach()
        assert sim.telemetry is None

    def test_detach_restores_commit_listener(self):
        sim = stepped_sim()
        sentinel = []
        sim.commit_listener = sentinel.append
        sampler = TelemetrySampler(sim, interval=10)
        sampler.detach()
        assert sim.commit_listener is not None
        for _ in range(40):
            sim.step()
        assert sentinel  # original listener survived the round trip
        assert sampler.samples == []  # detached: no further sampling

    def test_double_attach_rejected(self):
        sim = stepped_sim()
        TelemetrySampler(sim, interval=10)
        with pytest.raises(RuntimeError):
            TelemetrySampler(sim, interval=10)

    def test_no_sampling_after_detach_mid_run(self):
        sim = stepped_sim()
        sampler = TelemetrySampler(sim, interval=10)
        for _ in range(30):
            sim.step()
        sampler.detach()
        count = len(sampler.samples)
        for _ in range(30):
            sim.step()
        assert len(sampler.samples) == count


class TestSerialisation:
    def test_to_rows_round_trip_fields(self):
        sim = stepped_sim()
        sampler = TelemetrySampler(sim, interval=20)
        for _ in range(60):
            sim.step()
        rows = sampler.to_rows()
        assert len(rows) == len(sampler.samples)
        row = rows[0]
        for key in ("cycle_start", "cycle_end", "measuring", "icount",
                    "int_iq", "fp_iq", "outstanding_misses", "fetched",
                    "fetched_per_thread", "fetch_share", "issued",
                    "committed", "committed_per_thread", "ipc"):
            assert key in row

    def test_sample_ipc(self):
        sample = TelemetrySample(
            cycle_start=0, cycle_end=100, measuring=True, icount=[3],
            int_iq=5, fp_iq=0, outstanding_misses=0, fetched=200,
            fetched_per_thread=[200], issued=150, committed=120,
            committed_per_thread=[120],
        )
        assert sample.ipc == pytest.approx(1.2)
        assert sample.fetch_share == [1.0]

    def test_report_renders(self):
        sim = stepped_sim()
        sampler = TelemetrySampler(sim, interval=20)
        for _ in range(60):
            sim.step()
        text = sampler.report()
        assert "IPC" in text and "icount" in text
        assert TelemetrySampler(stepped_sim(), interval=5,
                                autostart=False).report().endswith(
            "(no samples)")
