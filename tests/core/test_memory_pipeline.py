"""Tests for load/store handling in the pipeline: optimistic issue,
squash on miss, memory disambiguation (Sections 2 and 6)."""

import pytest

from repro.core.config import SMTConfig
from repro.core.simulator import Simulator
from repro.core.uop import S_COMMITTED
from repro.isa.assembler import assemble

from tests.core.test_pipeline_timing import make_sim


def drain(sim, cycles=60):
    seen = []
    for _ in range(cycles):
        sim.step()
        for u in sim.threads[0].rob:
            if u not in seen:
                seen.append(u)
    return seen


class TestOptimisticIssue:
    LOAD_USE = """
    .data
    buf: .word 7
    .text
    _start:
        li r1, buf
        ld r2, 0(r1)
        addi r3, r2, 1
    loop:
        j loop
    """

    def test_hit_dependent_issues_next_cycle(self):
        sim = make_sim(self.LOAD_USE, warm_data=True)
        seen = drain(sim, 30)
        load = next(u for u in seen if u.is_load)
        use = next(u for u in seen if u.instr.opcode.mnemonic == "addi"
                   and u.instr.rs1 == 2)
        assert use.issue_c == load.issue_c + 1  # optimistic 1-cycle load
        assert use.squash_count == 0
        assert sim.stats.squashed_optimistic == 0 or not sim.measuring

    def test_miss_squashes_dependent(self):
        sim = make_sim(self.LOAD_USE, warm_data=False)  # cold D-cache
        sim.measuring = True
        seen = drain(sim, 400)
        load = next(u for u in seen if u.is_load)
        use = next(u for u in seen if u.instr.opcode.mnemonic == "addi"
                   and u.instr.rs1 == 2)
        assert load.dcache_hit is False
        assert use.squash_count >= 1
        assert sim.stats.squashed_optimistic >= 1
        # The dependent's final issue meets the data: it completes after
        # the load's fill.
        assert use.issue_c > load.issue_c + 1

    def test_conservative_mode_never_squashes(self):
        sim = make_sim(self.LOAD_USE, warm_data=False, optimistic_issue=False)
        sim.measuring = True
        seen = drain(sim, 400)
        use = next(u for u in seen if u.instr.opcode.mnemonic == "addi"
                   and u.instr.rs1 == 2)
        assert use.squash_count == 0
        assert sim.stats.squashed_optimistic == 0

    def test_conservative_mode_slower_on_hits(self):
        sim = make_sim(self.LOAD_USE, warm_data=True, optimistic_issue=False)
        seen = drain(sim, 40)
        load = next(u for u in seen if u.is_load)
        use = next(u for u in seen if u.instr.opcode.mnemonic == "addi"
                   and u.instr.rs1 == 2)
        assert use.issue_c >= load.exec_c  # waits for hit/miss knowledge


class TestMemoryDisambiguation:
    def test_load_waits_for_matching_older_store(self):
        source = """
        .data
        buf: .space 64
        .text
        _start:
            li r1, buf
            li r2, 55
            st r2, 0(r1)
            ld r3, 0(r1)
        loop:
            j loop
        """
        sim = make_sim(source, warm_data=True)
        seen = drain(sim, 60)
        store = next(u for u in seen if u.is_store)
        load = next(u for u in seen if u.is_load)
        assert load.issue_c >= store.exec_c

    def test_unrelated_addresses_do_not_serialise(self):
        source = """
        .data
        a: .space 8
        b: .space 8192
        .text
        _start:
            li r1, a
            li r2, b
            li r3, 9
            st r3, 0(r1)
            ld r4, 4096(r2)
        loop:
            j loop
        """
        sim = make_sim(source, warm_data=True)
        seen = drain(sim, 60)
        store = next(u for u in seen if u.is_store)
        load = next(u for u in seen if u.is_load)
        # 10-bit keys differ (offset 4 KiB+): the load need not wait.
        assert load.mem_key != store.mem_key
        assert load.issue_c < store.exec_c

    def test_partial_address_aliasing_is_conservative(self):
        """Two addresses 8 KiB apart share low 10 bits (word-granular):
        the disambiguator must treat them as conflicting."""
        source = """
        .data
        a: .space 8192
        .text
        _start:
            li r1, a
            li r3, 9
            st r3, 0(r1)
            ld r4, 8192(r1)
        loop:
            j loop
        """
        sim = make_sim(source, warm_data=True)
        seen = drain(sim, 60)
        store = next(u for u in seen if u.is_store)
        load = next(u for u in seen if u.is_load)
        assert load.mem_key == store.mem_key  # false match by design
        assert load.issue_c >= store.exec_c


class TestStores:
    def test_store_completes_at_exec(self):
        source = """
        .data
        buf: .space 16
        .text
        _start:
            li r1, buf
            li r2, 3
            st r2, 0(r1)
        loop:
            j loop
        """
        sim = make_sim(source, warm_data=True)
        seen = drain(sim, 40)
        store = next(u for u in seen if u.is_store)
        assert store.complete_c == store.exec_c
        assert store.state == S_COMMITTED

    def test_store_miss_does_not_block_commit_long(self):
        source = """
        .data
        buf: .space 16
        .text
        _start:
            li r1, buf
            li r2, 3
            st r2, 0(r1)
            addi r4, r4, 1
        loop:
            j loop
        """
        sim = make_sim(source, warm_data=False)
        seen = drain(sim, 200)
        store = next(u for u in seen if u.is_store)
        follow = next(u for u in seen if u.instr.rd == 4)
        # The store retires into the write path; the following
        # instruction commits shortly after, not after the fill.
        assert follow.state == S_COMMITTED
        assert store.complete_c - store.exec_c <= 2
