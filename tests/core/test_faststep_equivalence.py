"""Fast-step loop vs reference loop: bit-identical ``SimResult``s.

The specialized loop in :mod:`repro.core.faststep` is a transcription
of :meth:`Simulator.step`, not a re-derivation — every run here must
produce a ``SimResult`` *equal on every field* to the reference path,
across thread counts, all six static fetch policies, an adaptive
meta-policy, and with the cycle-granular observers (sanitizer,
telemetry) attached, which force the reference loop but must not change
the simulated outcome.
"""

import dataclasses

import pytest

from repro.core.config import scheme
from repro.core.simulator import Simulator
from repro.core.telemetry import TelemetrySampler
from repro.verify.sanitizer import PipelineSanitizer
from repro.workloads.mixes import standard_mix

BUDGET = dict(warmup_cycles=200, measure_cycles=1200,
              functional_warmup_instructions=6000)

STATIC_POLICIES = ["ICOUNT", "RR", "BRCOUNT", "MISSCOUNT", "IQPOSN",
                   "ICOUNT_BRCOUNT"]
META_POLICY = "HYSTERESIS"
THREAD_COUNTS = [1, 4, 8]


def _run(config, fast, observers=False):
    sim = Simulator(config, standard_mix(config.n_threads, 0))
    sim.use_fast_step = fast
    if observers:
        PipelineSanitizer(sim)
        TelemetrySampler(sim, interval=200)
    return sim.run(**BUDGET)


def _fields(result):
    return dataclasses.asdict(result)


@pytest.mark.parametrize("n_threads", THREAD_COUNTS)
@pytest.mark.parametrize("policy", STATIC_POLICIES + [META_POLICY])
def test_fast_path_bit_identical(policy, n_threads):
    config = scheme(policy, 2, 8, n_threads=n_threads)
    fast = _run(config, fast=True)
    reference = _run(config, fast=False)
    assert _fields(fast) == _fields(reference)


@pytest.mark.parametrize("n_threads", THREAD_COUNTS)
def test_observers_force_reference_without_changing_results(n_threads):
    """Sanitizer + telemetry suppress the fast loop (they need per-cycle
    hooks); the observed run must still equal both bare paths."""
    config = scheme("ICOUNT", 2, 8, n_threads=n_threads)
    observed = _run(config, fast=True, observers=True)
    bare_fast = _run(config, fast=True)
    bare_reference = _run(config, fast=False)
    assert _fields(observed) == _fields(bare_fast) == _fields(bare_reference)


def test_env_kill_switch_forces_reference(monkeypatch):
    """``REPRO_NO_FAST_STEP=1`` disables the fast loop; results are
    unchanged either way."""
    config = scheme("ICOUNT", 2, 8, n_threads=4)
    fast = _run(config, fast=True)
    monkeypatch.setenv("REPRO_NO_FAST_STEP", "1")
    disabled = _run(config, fast=True)
    assert _fields(fast) == _fields(disabled)


@pytest.mark.parametrize("variant", ["itag", "bigq"])
def test_fast_path_bit_identical_variants(variant):
    """The queue/fetch variants exercise distinct fast-loop branches."""
    config = scheme("ICOUNT", 2, 8, n_threads=8, **{variant: True})
    assert _fields(_run(config, True)) == _fields(_run(config, False))
