"""Unit tests for the statistics container."""

from repro.core.stats import Stats


class TestDerivedMetrics:
    def test_ipc(self):
        s = Stats(cycles=100, committed=250)
        assert s.ipc == 2.5

    def test_zero_cycles_safe(self):
        s = Stats()
        assert s.ipc == 0.0
        assert s.fetch_per_cycle == 0.0
        assert s.avg_queue_population == 0.0

    def test_wrong_path_fractions(self):
        s = Stats(fetched_total=200, fetched_wrong_path=30,
                  issued_total=100, issued_wrong_path=5)
        assert s.wrong_path_fetched_frac == 0.15
        assert s.wrong_path_issued_frac == 0.05

    def test_useful_fetch_excludes_wrong_path(self):
        s = Stats(cycles=100, fetched_total=500, fetched_wrong_path=100)
        assert s.useful_fetch_per_cycle == 4.0
        assert s.fetch_per_cycle == 5.0

    def test_queue_fractions(self):
        s = Stats(cycles=200, int_iq_full_cycles=30, fp_iq_full_cycles=10)
        assert s.int_iq_full_frac == 0.15
        assert s.fp_iq_full_frac == 0.05

    def test_mispredict_rates(self):
        s = Stats(cond_branches_resolved=50, cond_branch_mispredicts=5,
                  jumps_resolved=10, jump_mispredicts=1)
        assert s.branch_mispredict_rate == 0.1
        assert s.jump_mispredict_rate == 0.1

    def test_rates_safe_with_no_branches(self):
        s = Stats()
        assert s.branch_mispredict_rate == 0.0
        assert s.jump_mispredict_rate == 0.0

    def test_mpki(self):
        s = Stats(committed=10000)
        assert s.mpki(50) == 5.0

    def test_mpki_no_commits(self):
        assert Stats().mpki(50) == 0.0

    def test_squashed_optimistic_frac(self):
        s = Stats(issued_total=200, squashed_optimistic=14)
        assert s.squashed_optimistic_frac == 0.07

    def test_avg_queue_population(self):
        s = Stats(cycles=10, queue_population_sum=300)
        assert s.avg_queue_population == 30.0

    def test_fetch_active_frac(self):
        s = Stats(cycles=200, fetch_cycles_active=150)
        assert s.fetch_active_frac == 0.75
        assert Stats().fetch_active_frac == 0.0


class TestFetchCountersSurfaced:
    """Regression: fetch_cycles_active / icache_miss_stall_events were
    accumulated by the fetch unit but never reached SimResult."""

    def test_nonzero_on_real_run(self):
        from repro.core.config import scheme
        from repro.core.simulator import Simulator
        from repro.workloads.mixes import standard_mix

        sim = Simulator(scheme("ICOUNT", 2, 8, n_threads=2),
                        standard_mix(2, 0))
        # No warmup at all: the cold I-cache guarantees miss stalls
        # inside the measured window.
        sim.measuring = True
        for _ in range(3000):
            sim.step()
        result = sim.result()
        assert result.fetch_active_frac > 0.0
        assert result.icache_miss_stall_events > 0
        assert result.fetch_active_frac <= 1.0
