"""Unit tests for execute-stage behaviour: retries, cascade squash,
store handling, width enforcement, commit ordering."""

import pytest

from repro.core.config import SMTConfig
from repro.core.simulator import Simulator
from repro.core.uop import S_COMMITTED
from repro.isa.assembler import assemble

from tests.core.test_pipeline_timing import make_sim


def drain(sim, cycles):
    seen = []
    for _ in range(cycles):
        sim.step()
        for u in sim.threads[0].rob:
            if u not in seen:
                seen.append(u)
    return seen


class TestCascadeSquash:
    def test_transitive_dependents_squashed_on_miss(self):
        """A -> B -> C chain on a missing load: B issues optimistically
        and is squashed; C, which issued on B's wakeup, must also be
        squashed (the cascade case)."""
        source = """
        .data
        buf: .word 3
        .text
        _start:
            li r9, buf
            ld r1, 0(r9)
            addi r2, r1, 1
            addi r3, r2, 1
        loop:
            j loop
        """
        sim = make_sim(source, warm_data=False)
        sim.measuring = True
        seen = drain(sim, 400)
        b = next(u for u in seen if u.instr.rs1 == 1)
        c = next(u for u in seen if u.instr.rs1 == 2)
        assert b.squash_count >= 1
        assert c.squash_count >= 1
        # All three eventually commit, in order.
        load = next(u for u in seen if u.is_load)
        assert load.state == S_COMMITTED
        assert b.state == S_COMMITTED and c.state == S_COMMITTED

    def test_squash_does_not_touch_other_threads(self):
        programs = [assemble("""
        .data
        buf: .word 1
        .text
        _start:
            li r9, buf
            ld r1, 0(r9)
            addi r2, r1, 1
        loop:
            j loop
        """), assemble("""
        .text
        _start:
            addi r1, r0, 1
        loop:
            addi r2, r2, 1
            j loop
        """)]
        sim = Simulator(SMTConfig(n_threads=2, fetch_threads=2), programs)
        for thread in sim.threads:
            program = thread.program
            for pc in range(program.text_start, program.text_end, 64):
                sim.hierarchy.warm_access(thread.tid, thread.phys_addr(pc),
                                          True)
        sim.measuring = True
        for _ in range(300):
            sim.step()
        # Thread 1 (no loads at all) must never be optimistically
        # squashed by thread 0's miss.
        for u in sim.threads[1].rob:
            assert u.squash_count == 0


class TestStoreRetry:
    def test_store_retries_until_accepted(self):
        """Saturate the D-cache ports so a store gets rejected at least
        once, then completes."""
        lines = [".data", "buf: .space 4096", ".text", "_start:",
                 "    li r20, buf"]
        for i in range(12):
            lines.append(f"    ld r{(i % 6) + 1}, {64 * i}(r20)")
        lines.append("    st r1, 2048(r20)")
        lines.append("loop:")
        lines.append("    j loop")
        sim = make_sim("\n".join(lines), warm_data=True)
        seen = drain(sim, 80)
        store = next(u for u in seen if u.is_store)
        assert store.state == S_COMMITTED
        # exec_c may have slid past issue + exec_offset due to retries.
        assert store.exec_c >= store.issue_c + sim.cfg.exec_offset


class TestCommitOrdering:
    def test_per_thread_program_order(self):
        sim = make_sim("""
        .text
        _start:
            addi r1, r0, 1
            mul r2, r1, r1
            addi r3, r0, 3
        loop:
            addi r4, r4, 1
            j loop
        """)
        committed = []
        sim.commit_listener = lambda u: committed.append(u.seq)
        for _ in range(80):
            sim.step()
        assert committed == sorted(committed)

    def test_commit_width_respected(self):
        sim = make_sim("""
        .text
        _start:
            addi r1, r0, 1
        loop:
            addi r2, r2, 1
            addi r3, r3, 1
            addi r4, r4, 1
            beqz r0, loop
        """, commit_width=2)
        per_cycle = {}
        sim.commit_listener = (
            lambda u: per_cycle.__setitem__(
                sim.cycle, per_cycle.get(sim.cycle, 0) + 1
            )
        )
        for _ in range(100):
            sim.step()
        assert per_cycle
        assert max(per_cycle.values()) <= 2

    def test_long_latency_blocks_younger_commits(self):
        sim = make_sim("""
        .text
        _start:
            li r1, 3
            li r2, 5
            mulq r3, r1, r2
            addi r4, r0, 4
        loop:
            j loop
        """)
        seen = drain(sim, 60)
        mul = next(u for u in seen if u.instr.opcode.mnemonic == "mulq")
        younger = next(u for u in seen if u.instr.rd == 4)
        # mulq has a 16-cycle latency; r4's producer executed long
        # before but must wait for in-order commit behind it... the
        # listener isn't attached, so compare complete/commit ordering
        # via commit_ready and actual state.
        assert younger.complete_c < mul.complete_c
        assert younger.state == S_COMMITTED and mul.state == S_COMMITTED


class TestWidths:
    def test_decode_width_limits_flow(self):
        lines = [".text", "_start:"]
        for i in range(40):
            lines.append(f"addi r{(i % 7) + 1}, r0, 1")
        lines.append("loop:")
        lines.append("j loop")
        sim = make_sim("\n".join(lines), decode_width=2, rename_width=2)
        per_cycle = {}
        seen = set()
        for _ in range(60):
            sim.step()
            for u in sim.threads[0].rob:
                if id(u) not in seen and u.decode_c >= 0:
                    seen.add(id(u))
                    per_cycle[u.decode_c] = per_cycle.get(u.decode_c, 0) + 1
        assert per_cycle
        assert max(per_cycle.values()) <= 2

    def test_ipc_bounded_by_narrow_decode(self):
        lines = [".text", "_start:"]
        for i in range(40):
            lines.append(f"addi r{(i % 7) + 1}, r0, 1")
        lines.append("loop:")
        lines.append("j loop")
        sim = make_sim("\n".join(lines), decode_width=2, rename_width=2)
        sim.measuring = True
        for _ in range(200):
            sim.step()
        assert sim.stats.committed <= 2 * 200 + 16
