"""Unit tests for the fetch thread-choice policies (Section 5.2)."""

import pytest

from repro.core.fetch_policy import priority_order
from repro.core.queues import InstructionQueue
from repro.core.thread import ThreadContext
from repro.core.uop import S_QUEUED, Uop
from repro.isa.assembler import assemble
from repro.isa.instructions import Instruction, Opcode


@pytest.fixture
def threads():
    program = assemble(".text\nloop:\n addi r1, r1, 1\n j loop")
    return [ThreadContext(tid, program) for tid in range(4)]


@pytest.fixture
def queues():
    return (
        InstructionQueue("int", 32, 32),
        InstructionQueue("fp", 32, 32),
    )


def order(policy, threads, queues, cycle=0, rr=0):
    int_q, fp_q = queues
    return [
        t.tid
        for t in priority_order(policy, threads, cycle, rr, len(threads),
                                int_q, fp_q)
    ]


class TestRoundRobin:
    def test_rotation(self, threads, queues):
        assert order("RR", threads, queues, rr=0) == [0, 1, 2, 3]
        assert order("RR", threads, queues, rr=2) == [2, 3, 0, 1]

    def test_unknown_policy(self, threads, queues):
        with pytest.raises(ValueError):
            order("MAGIC", threads, queues)


class TestBrcount:
    def test_fewest_unresolved_branches_first(self, threads, queues):
        threads[0].unresolved_branches = 5
        threads[2].unresolved_branches = 1
        result = order("BRCOUNT", threads, queues)
        assert result[0] in (1, 3)     # zero branches
        assert result[-1] == 0

    def test_tie_breaks_round_robin(self, threads, queues):
        assert order("BRCOUNT", threads, queues, rr=3) == [3, 0, 1, 2]


class TestMisscount:
    def test_fewest_outstanding_misses_first(self, threads, queues):
        threads[1].outstanding_misses = [100, 100]
        threads[3].outstanding_misses = [100]
        result = order("MISSCOUNT", threads, queues, cycle=0)
        assert result[-1] == 1
        assert result[-2] == 3

    def test_completed_misses_pruned(self, threads, queues):
        threads[1].outstanding_misses = [5, 5]   # complete before cycle 50
        result = order("MISSCOUNT", threads, queues, cycle=50)
        assert result == [0, 1, 2, 3]  # tie: pure round-robin


class TestIcount:
    def test_fewest_unissued_first(self, threads, queues):
        threads[0].unissued_count = 9
        threads[1].unissued_count = 2
        threads[2].unissued_count = 5
        result = order("ICOUNT", threads, queues)
        assert result == [3, 1, 2, 0]

    def test_ties_round_robin(self, threads, queues):
        threads[0].unissued_count = 1
        threads[1].unissued_count = 1
        # Threads 2,3 (count 0) first; the tied pair orders by rotation.
        assert order("ICOUNT", threads, queues, rr=1) == [2, 3, 1, 0]


class TestIqposn:
    def _queued(self, tid, seq):
        u = Uop(tid, seq, 0x10000,
                Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3), False)
        u.state = S_QUEUED
        return u

    def test_closest_to_head_gets_lowest_priority(self, threads, queues):
        int_q, _ = queues
        int_q.add(self._queued(0, 0))   # thread 0 at the head
        int_q.add(self._queued(1, 1))
        result = order("IQPOSN", threads, queues)
        assert result[-1] == 0
        assert result[-2] == 1

    def test_empty_threads_best(self, threads, queues):
        int_q, _ = queues
        int_q.add(self._queued(2, 0))
        result = order("IQPOSN", threads, queues)
        assert result[-1] == 2
        assert set(result[:3]) == {0, 1, 3}

    def test_considers_both_queues(self, threads, queues):
        int_q, fp_q = queues
        fp_q.add(self._queued(3, 0))
        result = order("IQPOSN", threads, queues)
        assert result[-1] == 3
