"""Property-based tests (hypothesis) for core data structures and the
whole simulator."""

from hypothesis import given, settings, strategies as st

from repro.branch.ras import ReturnAddressStack
from repro.core.config import SMTConfig
from repro.core.rename import Renamer
from repro.core.simulator import Simulator
from repro.core.uop import Uop
from repro.isa.assembler import assemble
from repro.isa.instructions import Instruction, Opcode
from repro.workloads.mixes import standard_mix


# ----------------------------------------------------------------------
# Return address stack vs a reference model (within capacity).
# ----------------------------------------------------------------------
@given(st.lists(st.one_of(
    st.tuples(st.just("push"), st.integers(0, 1000)),
    st.tuples(st.just("pop"), st.just(0)),
), max_size=60))
@settings(max_examples=80, deadline=None)
def test_ras_matches_reference_stack_within_capacity(ops):
    ras = ReturnAddressStack(depth=12)
    reference = []
    for op, value in ops:
        if op == "push":
            ras.push(value)
            reference.append(value)
            if len(reference) > 12:
                reference.pop(0)  # circular overwrite
        else:
            got = ras.pop()
            want = reference.pop() if reference else None
            if want is not None:
                assert got == want


# ----------------------------------------------------------------------
# Renamer conservation under arbitrary rename/commit/rollback orders.
# ----------------------------------------------------------------------
@given(st.lists(st.integers(0, 2), min_size=1, max_size=80),
       st.integers(0, 2**31))
@settings(max_examples=60, deadline=None)
def test_renamer_conserves_registers(actions, seed):
    import random
    rng = random.Random(seed)
    renamer = Renamer(n_threads=2, physical_per_file=80)
    live = []  # renamed, not yet committed/rolled back (stack order)
    seq = 0
    for action in actions:
        if action == 0 or not live:  # rename
            instr = Instruction(
                Opcode.ADD, rd=rng.randrange(32),
                rs1=rng.randrange(32), rs2=rng.randrange(32),
            )
            uop = Uop(rng.randrange(2), seq, 0x10000, instr, False)
            seq += 1
            if renamer.rename(uop):
                live.append(uop)
        elif action == 1:  # commit oldest
            renamer.commit(live.pop(0))
        else:  # rollback youngest (squash order)
            renamer.rollback(live.pop())
    # Finish everything off and check the partition.
    while live:
        renamer.rollback(live.pop())
    for rf in (renamer.int_file, renamer.fp_file):
        free = set(rf.free_list)
        assert len(free) == len(rf.free_list)
        mapped = {p for m in rf.maps for p in m}
        assert free | mapped == set(range(rf.physical))
        assert not (free & mapped)


# ----------------------------------------------------------------------
# Whole-simulator smoke property: any sane configuration simulates a
# short window without violating basic invariants.
# ----------------------------------------------------------------------
config_strategy = st.builds(
    SMTConfig,
    n_threads=st.sampled_from([1, 2, 4]),
    fetch_policy=st.sampled_from(["RR", "BRCOUNT", "MISSCOUNT", "ICOUNT",
                                  "IQPOSN"]),
    fetch_threads=st.sampled_from([1, 2]),
    fetch_per_thread=st.sampled_from([4, 8]),
    issue_policy=st.sampled_from(["OLDEST", "OPT_LAST", "SPEC_LAST",
                                  "BRANCH_FIRST"]),
    bigq=st.booleans(),
    itag=st.booleans(),
    optimistic_issue=st.booleans(),
)


@given(config_strategy)
@settings(max_examples=15, deadline=None, derandomize=True)
def test_simulator_invariants_hold_for_any_config(config):
    sim = Simulator(config, standard_mix(config.n_threads, 0))
    result = sim.run(warmup_cycles=100, measure_cycles=700,
                     functional_warmup_instructions=4000)
    assert result.committed >= 0
    assert 0 <= result.ipc <= config.fetch_width
    assert len(sim.int_queue) <= config.iq_capacity
    assert len(sim.fp_queue) <= config.iq_capacity
    for thread in sim.threads:
        assert thread.unissued_count >= 0
        assert thread.unresolved_branches >= 0
    # Register conservation.
    for rf in (sim.renamer.int_file, sim.renamer.fp_file):
        free = set(rf.free_list)
        mapped = {p for m in rf.maps for p in m}
        held = {
            u.old_preg
            for t in sim.threads for u in t.rob
            if u.dest_preg is not None
        }
        assert free | mapped | held == set(range(rf.physical))


# ----------------------------------------------------------------------
# Tiny hand-rolled programs: the committed instruction stream must be a
# prefix of the architectural (oracle) stream, whatever the timing does.
# ----------------------------------------------------------------------
@given(st.integers(2, 30), st.integers(0, 2**31))
@settings(max_examples=20, deadline=None, derandomize=True)
def test_committed_stream_matches_oracle(trip, seed):
    import random
    rng = random.Random(seed)
    body = "\n".join(
        f"    addi r{rng.randrange(1, 9)}, r{rng.randrange(1, 9)}, {rng.randrange(8)}"
        for _ in range(rng.randrange(1, 6))
    )
    source = f"""
    .text
    _start:
        li r1, {trip}
    loop:
{body}
        addi r1, r1, -1
        bnez r1, loop
    done:
        j done
    """
    program = assemble(source)
    sim = Simulator(SMTConfig(n_threads=1), [program])
    committed_pcs = []
    sim.commit_listener = lambda uop: committed_pcs.append(uop.pc)
    for _ in range(600):
        sim.step()
    assert committed_pcs, "nothing committed"
    from repro.isa.emulator import Emulator
    oracle = Emulator(program)
    oracle_pcs = [oracle.step().pc for _ in range(len(committed_pcs))]
    # The committed stream is exactly a prefix of the architectural one:
    # timing may vary, architecture may not.
    assert committed_pcs == oracle_pcs
