"""Unit tests for issue selection: FU limits and policy ordering
(Section 6), driven through small controlled simulations."""

import pytest

from repro.core.config import SMTConfig
from repro.core.simulator import Simulator
from repro.isa.assembler import assemble

from tests.core.test_pipeline_timing import make_sim


def drain(sim, cycles):
    seen = []
    for _ in range(cycles):
        sim.step()
        for u in sim.threads[0].rob:
            if u not in seen:
                seen.append(u)
    return seen


class TestFunctionalUnitLimits:
    def issued_per_cycle(self, sim, cycles, pred):
        counts = {}
        seen = set()
        for _ in range(cycles):
            sim.step()
            for u in sim.threads[0].rob:
                if id(u) in seen or u.issue_c < 0:
                    continue
                seen.add(id(u))
                if pred(u):
                    counts[u.issue_c] = counts.get(u.issue_c, 0) + 1
        return counts

    def test_int_issue_capped_at_6(self):
        lines = [".text", "_start:"]
        for i in range(64):
            lines.append(f"addi r{(i % 7) + 1}, r0, {i}")
        lines.append("loop:")
        lines.append("j loop")
        sim = make_sim("\n".join(lines))
        counts = self.issued_per_cycle(
            sim, 25, lambda u: not u.is_fp_op and not u.is_control
        )
        assert counts
        assert max(counts.values()) <= 6

    def test_fp_issue_capped_at_3(self):
        lines = [".text", "_start:"]
        for i in range(40):
            lines.append(f"fadd f{(i % 7) + 1}, f12, f13")
        lines.append("loop:")
        lines.append("j loop")
        sim = make_sim("\n".join(lines))
        counts = self.issued_per_cycle(sim, 25, lambda u: u.is_fp_op)
        assert counts
        assert max(counts.values()) <= 3

    def test_loads_capped_at_4(self):
        lines = [".text", "_start:", "    li r20, 16384"]
        for i in range(32):
            lines.append(f"ld r{(i % 6) + 1}, {8 * i}(r20)")
        lines.append("loop:")
        lines.append("j loop")
        sim = make_sim("\n".join(lines), warm_data=True)
        counts = self.issued_per_cycle(sim, 30, lambda u: u.is_load)
        assert counts
        assert max(counts.values()) <= 4

    def test_infinite_fus_exceed_caps(self):
        lines = [".text", "_start:"]
        for i in range(64):
            lines.append(f"addi r{(i % 7) + 1}, r0, {i}")
        lines.append("loop:")
        lines.append("j loop")
        sim = make_sim("\n".join(lines), infinite_fus=True)
        counts = self.issued_per_cycle(
            sim, 25, lambda u: not u.is_fp_op and not u.is_control
        )
        assert max(counts.values()) > 6


class TestIssuePolicyOrdering:
    def test_opt_last_defers_load_dependents(self):
        """With OPT_LAST, an independent instruction competes ahead of
        a load-dependent one in the same cycle."""
        source = """
        .data
        buf: .word 5
        .text
        _start:
            li r9, buf
            ld r1, 0(r9)
            addi r2, r1, 1
            addi r3, r0, 7
        loop:
            j loop
        """
        sim = make_sim(source, warm_data=True, issue_policy="OPT_LAST")
        seen = drain(sim, 30)
        dependent = next(u for u in seen if u.instr.rs1 == 1)
        independent = next(u for u in seen if u.instr.rd == 3)
        assert independent.issue_c <= dependent.issue_c

    def test_branch_first_prioritises_branches(self):
        source = """
        .text
        _start:
            addi r1, r0, 1
            addi r2, r0, 2
            addi r3, r0, 3
            addi r4, r0, 4
            addi r5, r0, 5
            addi r6, r0, 6
            beqz r0, target
            addi r7, r0, 7
        target:
            addi r1, r1, 1
        loop:
            j loop
        """
        sim = make_sim(source, issue_policy="BRANCH_FIRST")
        seen = drain(sim, 30)
        branch = next(u for u in seen if u.is_cond_branch)
        alus = [u for u in seen if u.instr.opcode.mnemonic == "addi"
                and not u.wrong_path and u.seq < branch.seq]
        # The branch never issues later than the oldest co-resident ALU
        # op that entered the queue with it.
        same_window = [u for u in alus if u.dispatch_c == branch.dispatch_c]
        if same_window:
            assert branch.issue_c <= max(u.issue_c for u in same_window)

    @pytest.mark.parametrize("mode", ["no_pass_branch", "no_wrong_path"])
    def test_speculation_restrictions_order_issue(self, mode):
        source = """
        .text
        _start:
            beqz r0, target
            addi r1, r1, 1
        target:
            addi r2, r2, 1
        loop:
            j loop
        """
        sim = make_sim(source, speculation=mode)
        seen = drain(sim, 40)
        branch = next(u for u in seen if u.is_cond_branch)
        younger = [u for u in seen
                   if u.seq > branch.seq and u.issue_c >= 0
                   and not u.wrong_path]
        for u in younger:
            assert u.issue_c >= branch.issue_c
            if mode == "no_wrong_path":
                assert u.issue_c >= branch.issue_c + 4
