"""Unit tests for the fetch unit: partitioning, block termination,
bank-conflict selection, ITAG (Section 5)."""

import pytest

from repro.core.config import SMTConfig, scheme
from repro.core.simulator import Simulator
from repro.core.thread import BLOCKED
from repro.isa.assembler import assemble

from tests.core.test_pipeline_timing import make_sim


def warm_sim(programs, **config_kwargs):
    sim = Simulator(SMTConfig(**config_kwargs), programs)
    for thread in sim.threads:
        program = thread.program
        for pc in range(program.text_start, program.text_end, 64):
            sim.hierarchy.warm_access(thread.tid, thread.phys_addr(pc), True)
    return sim


def stub_sim(programs, **config_kwargs):
    """A simulator whose I-side always hits and whose threads occupy
    distinct I-cache banks: isolates fetch *partitioning* logic from
    cache-content effects (different threads' identical layouts can
    legitimately evict each other in the direct-mapped I-cache)."""
    from repro.memory.hierarchy import AccessResult
    sim = Simulator(SMTConfig(**config_kwargs), programs)
    sim.hierarchy.ifetch = lambda tid, addr, cycle: AccessResult(True, cycle)
    sim.hierarchy.icache.bank_of = lambda addr: (addr >> 28) & 7
    return sim


STRAIGHT = """
.text
_start:
    addi r1, r1, 1
    addi r2, r2, 1
    addi r3, r3, 1
    addi r4, r4, 1
    addi r5, r5, 1
    addi r6, r6, 1
    addi r7, r7, 1
    addi r8, r8, 1
loop:
    j loop
"""


class TestPartitioning:
    def fetched_at_cycle0(self, sim):
        sim.step()
        return [u for u in sim.fetch_buffer if u.fetch_c == 0]

    def test_rr18_fetches_eight_from_one_thread(self):
        sim = warm_sim([assemble(STRAIGHT)], n_threads=1,
                       fetch_threads=1, fetch_per_thread=8)
        uops = self.fetched_at_cycle0(sim)
        assert len(uops) == 8
        assert all(u.tid == 0 for u in uops)

    def test_per_thread_cap_num2(self):
        sim = warm_sim([assemble(STRAIGHT)], n_threads=1,
                       fetch_threads=1, fetch_per_thread=4)
        assert len(self.fetched_at_cycle0(sim)) == 4

    def test_rr24_fetches_four_each_from_two_threads(self):
        programs = [assemble(STRAIGHT), assemble(STRAIGHT)]
        sim = stub_sim(programs, n_threads=2,
                       fetch_threads=2, fetch_per_thread=4)
        uops = self.fetched_at_cycle0(sim)
        by_tid = {tid: sum(1 for u in uops if u.tid == tid) for tid in (0, 1)}
        assert by_tid == {0: 4, 1: 4}

    def test_rr28_fills_flexibly(self):
        """RR.2.8: take as many as possible from the first thread, then
        fill from the second (here the first gives all 8)."""
        programs = [assemble(STRAIGHT), assemble(STRAIGHT)]
        sim = stub_sim(programs, n_threads=2,
                       fetch_threads=2, fetch_per_thread=8)
        uops = self.fetched_at_cycle0(sim)
        assert len(uops) == 8
        assert all(u.tid == uops[0].tid for u in uops)

    def test_total_cap_is_fetch_width(self):
        programs = [assemble(STRAIGHT), assemble(STRAIGHT)]
        sim = stub_sim(programs, n_threads=2,
                       fetch_threads=2, fetch_per_thread=8, fetch_width=8)
        assert len(self.fetched_at_cycle0(sim)) <= 8

    def test_wide_fetch_16(self):
        """The Section 7 experiment: 16 total, up to 8 each from 2."""
        src_taken = """
        .text
        _start:
            addi r1, r1, 1
            addi r2, r2, 1
        loop:
            j loop
        """
        programs = [assemble(STRAIGHT), assemble(src_taken)]
        sim = stub_sim(programs, n_threads=2, fetch_threads=2,
                       fetch_per_thread=8, fetch_width=16,
                       decode_width=16, rename_width=16)
        uops = self.fetched_at_cycle0(sim)
        assert len(uops) > 8


class TestBlockTermination:
    def test_block_ends_after_predicted_taken_jump(self):
        source = """
        .text
        _start:
            addi r1, r1, 1
            j over
            addi r2, r2, 1
        over:
            addi r3, r3, 1
        loop:
            j loop
        """
        sim = warm_sim([assemble(source)], n_threads=1)
        sim.step()
        first_block = [u for u in sim.fetch_buffer if u.fetch_c == 0]
        # addi + j, then the block ends (j's target unknown: misfetch).
        assert len(first_block) == 2
        assert first_block[-1].instr.opcode.mnemonic == "j"

    def test_block_stops_at_cache_line_boundary(self):
        # 20 sequential instructions starting at TEXT_BASE (0x10000 is
        # line-aligned): a block may span at most to the line end (16
        # instructions), but fetch_width caps it at 8 anyway; use a
        # misaligned start by padding 14 instructions.
        lines = [".text", "_start:"]
        for i in range(30):
            lines.append(f"addi r{(i % 7) + 1}, r{(i % 7) + 1}, 1")
        lines.append("loop:")
        lines.append("j loop")
        sim = warm_sim([assemble("\n".join(lines))], n_threads=1,
                       fetch_per_thread=8, fetch_width=16,
                       decode_width=16, rename_width=16)
        # Advance to a fetch that starts 2 instructions before a line
        # boundary: first fetch 0..7, second 8..15 (line ends at 16).
        sim.step()
        sim.step()
        second = [u for u in sim.threads[0].rob if u.fetch_c == 1]
        if second:
            last_pc = second[-1].pc
            assert (last_pc + 4) % 64 == 0 or len(second) == 8


class TestBlockedThreads:
    def test_wrong_path_off_text_blocks_until_squash(self):
        source = """
        .text
        _start:
            addi r2, r2, 1
        loop:
            addi r1, r1, 1
            beqz r0, loop
        """
        # The always-taken backedge is the *last* instruction: its cold
        # not-taken prediction sends the wrong path straight off the end
        # of the text segment.
        sim = warm_sim([assemble(source)], n_threads=1)
        blocked_seen = False
        for _ in range(8):
            sim.step()
            if sim.threads[0].fetch_blocked_until >= BLOCKED:
                blocked_seen = True
        assert blocked_seen
        # Each mispredict resolution unblocks fetch and the loop makes
        # progress (the block recurs transiently every iteration until
        # the predictor's history saturates).
        before = sim.threads[0].emulator.instret
        for _ in range(40):
            sim.step()
        assert sim.threads[0].emulator.instret > before

    def test_icache_miss_blocks_and_delivers(self):
        sim = Simulator(SMTConfig(n_threads=1), [assemble(STRAIGHT)])
        sim.step()
        thread = sim.threads[0]
        assert thread.fetch_blocked_until > sim.cycle  # cold I$ miss
        assert thread.pending_ifill_line is not None
        assert sim.stats.fetched_total == 0 or not sim.measuring
        # Run to the fill and verify fetch proceeds without re-missing.
        while sim.cycle < thread.fetch_blocked_until:
            sim.step()
        misses_before = sim.hierarchy.icache.misses
        sim.step()
        assert sim.fetch_buffer  # delivered block fetched
        assert sim.hierarchy.icache.misses == misses_before


class TestItag:
    def test_itag_excludes_missing_thread_and_starts_miss(self):
        sim = Simulator(SMTConfig(n_threads=1, itag=True),
                        [assemble(STRAIGHT)])
        sim.step()
        thread = sim.threads[0]
        assert thread.fetch_blocked_until > sim.cycle
        assert len(sim.hierarchy.icache.outstanding) == 1

    def test_itag_fetches_after_fill(self):
        sim = Simulator(SMTConfig(n_threads=1, itag=True),
                        [assemble(STRAIGHT)])
        for _ in range(400):
            sim.step()
            if sim.fetch_buffer or any(t.rob for t in sim.threads):
                break
        assert any(t.rob for t in sim.threads) or sim.fetch_buffer
