"""Property-based tests for the static fetch policies.

Three laws hold for every static policy, whatever the thread state:

* the result is a permutation of the candidates (nothing dropped or
  duplicated, no foreign threads injected),
* equal-keyed threads appear in round-robin order from ``rr_offset``
  (the paper's tie-break),
* ICOUNT matches a brute-force stable sort on ``unissued_count``.
"""

from hypothesis import given, settings, strategies as st

from repro.core.fetch_policy import priority_order
from repro.core.queues import InstructionQueue
from repro.core.thread import ThreadContext
from repro.isa.assembler import assemble
from repro.policy.base import rr_rank
from repro.policy.registry import static_policy_names

_PROGRAM = assemble(".text\nloop:\n addi r1, r1, 1\n j loop")


def _threads(n, counters):
    """Build ``n`` contexts, applying per-thread counter dicts."""
    threads = [ThreadContext(tid, _PROGRAM) for tid in range(n)]
    for thread, values in zip(threads, counters):
        thread.unissued_count = values["unissued"]
        thread.unresolved_branches = values["branches"]
        thread.outstanding_misses = [10_000] * values["misses"]
    return threads


def _queues():
    return InstructionQueue("int", 32, 32), InstructionQueue("fp", 32, 32)


counter_strategy = st.fixed_dictionaries({
    "unissued": st.integers(0, 12),
    "branches": st.integers(0, 6),
    "misses": st.integers(0, 4),
})

state_strategy = st.tuples(
    st.lists(counter_strategy, min_size=1, max_size=8),
    st.integers(0, 7),          # rr_offset
    st.integers(0, 1000),       # cycle
)


@given(st.sampled_from(static_policy_names()), state_strategy)
@settings(max_examples=120, deadline=None)
def test_order_is_a_permutation(policy, state):
    counters, rr_offset, cycle = state
    threads = _threads(len(counters), counters)
    int_q, fp_q = _queues()
    rr_offset %= len(threads)
    result = priority_order(
        policy, threads, cycle, rr_offset, len(threads), int_q, fp_q
    )
    assert sorted(t.tid for t in result) == list(range(len(threads)))


@given(st.sampled_from(static_policy_names()), state_strategy)
@settings(max_examples=120, deadline=None)
def test_all_tied_reduces_to_round_robin(policy, state):
    """With identical per-thread state every policy keys equal, so the
    order must be exactly the round-robin rotation."""
    counters, rr_offset, cycle = state
    # Clone one counter set across all threads: every key ties.
    uniform = [counters[0]] * len(counters)
    threads = _threads(len(uniform), uniform)
    int_q, fp_q = _queues()
    n = len(threads)
    rr_offset %= n
    result = priority_order(
        policy, threads, cycle, rr_offset, n, int_q, fp_q
    )
    expected = sorted(range(n), key=lambda tid: (tid - rr_offset) % n)
    assert [t.tid for t in result] == expected


@given(state_strategy)
@settings(max_examples=120, deadline=None)
def test_icount_matches_brute_force_sort(state):
    counters, rr_offset, cycle = state
    threads = _threads(len(counters), counters)
    int_q, fp_q = _queues()
    n = len(threads)
    rr_offset %= n
    result = priority_order(
        "ICOUNT", threads, cycle, rr_offset, n, int_q, fp_q
    )
    brute = sorted(
        threads,
        key=lambda t: (t.unissued_count, rr_rank(t, rr_offset, n)),
    )
    assert [t.tid for t in result] == [t.tid for t in brute]


@given(state_strategy)
@settings(max_examples=80, deadline=None)
def test_brcount_sorted_by_branches(state):
    counters, rr_offset, cycle = state
    threads = _threads(len(counters), counters)
    int_q, fp_q = _queues()
    n = len(threads)
    rr_offset %= n
    result = priority_order(
        "BRCOUNT", threads, cycle, rr_offset, n, int_q, fp_q
    )
    keys = [t.unresolved_branches for t in result]
    assert keys == sorted(keys)


@given(state_strategy)
@settings(max_examples=80, deadline=None)
def test_misscount_sorted_by_live_misses(state):
    counters, rr_offset, cycle = state
    threads = _threads(len(counters), counters)
    int_q, fp_q = _queues()
    n = len(threads)
    rr_offset %= n
    result = priority_order(
        "MISSCOUNT", threads, cycle, rr_offset, n, int_q, fp_q
    )
    keys = [t.misscount(cycle) for t in result]
    assert keys == sorted(keys)
