"""Unit tests for the instruction queues."""

import pytest

from repro.core.queues import InstructionQueue
from repro.core.uop import S_ISSUED, S_QUEUED, Uop
from repro.isa.instructions import Instruction, Opcode


def make_uop(tid=0, seq=0, state=S_QUEUED):
    uop = Uop(tid, seq, 0x10000, Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3),
              wrong_path=False)
    uop.state = state
    return uop


class TestCapacity:
    def test_full(self):
        q = InstructionQueue("int", capacity=2, search_window=2)
        q.add(make_uop(seq=0))
        assert not q.full
        q.add(make_uop(seq=1))
        assert q.full

    def test_overflow_raises(self):
        q = InstructionQueue("int", capacity=1, search_window=1)
        q.add(make_uop())
        with pytest.raises(RuntimeError):
            q.add(make_uop(seq=1))

    def test_window_cannot_exceed_capacity(self):
        with pytest.raises(ValueError):
            InstructionQueue("int", capacity=16, search_window=32)

    def test_population_counts_issued_but_unreleased(self):
        q = InstructionQueue("int", capacity=4, search_window=4)
        u = make_uop()
        q.add(u)
        u.state = S_ISSUED
        assert q.population() == 1
        u.iq_freed = True
        q.release_freed()
        assert q.population() == 0


class TestSearchWindow:
    """BIGQ (Section 5.3): double capacity, but only the first 32
    entries are searchable for issue."""

    def test_waiting_only_in_window(self):
        q = InstructionQueue("int", capacity=4, search_window=2)
        uops = [make_uop(seq=i) for i in range(4)]
        for u in uops:
            q.add(u)
        visible = list(q.waiting())
        assert visible == uops[:2]

    def test_buffered_entries_become_searchable_as_head_drains(self):
        q = InstructionQueue("int", capacity=4, search_window=2)
        uops = [make_uop(seq=i) for i in range(4)]
        for u in uops:
            q.add(u)
        uops[0].iq_freed = True
        q.release_freed()
        assert list(q.waiting()) == uops[1:3]

    def test_waiting_skips_issued(self):
        q = InstructionQueue("int", capacity=4, search_window=4)
        a, b = make_uop(seq=0), make_uop(seq=1)
        q.add(a)
        q.add(b)
        a.state = S_ISSUED
        assert list(q.waiting()) == [b]


class TestRemoval:
    def test_remove_squashed(self):
        q = InstructionQueue("int", capacity=4, search_window=4)
        a, b = make_uop(seq=0), make_uop(seq=1)
        q.add(a)
        q.add(b)
        q.remove(a)
        assert list(q.waiting()) == [b]

    def test_remove_missing_is_noop(self):
        q = InstructionQueue("int", capacity=4, search_window=4)
        q.remove(make_uop())  # no exception


class TestIQPosnSupport:
    def test_oldest_position_of_thread(self):
        q = InstructionQueue("int", capacity=8, search_window=8)
        q.add(make_uop(tid=1, seq=0))
        q.add(make_uop(tid=0, seq=1))
        q.add(make_uop(tid=0, seq=2))
        assert q.oldest_position_of_thread(1) == 0
        assert q.oldest_position_of_thread(0) == 1

    def test_no_entries_returns_sentinel(self):
        q = InstructionQueue("int", capacity=8, search_window=8)
        assert q.oldest_position_of_thread(3) >= 1 << 30

    def test_issued_entries_not_counted(self):
        q = InstructionQueue("int", capacity=8, search_window=8)
        a = make_uop(tid=0, seq=0, state=S_ISSUED)
        b = make_uop(tid=0, seq=1)
        q.add(a)
        q.add(b)
        assert q.oldest_position_of_thread(0) == 1
