"""Tests for the pipeline tracer and the histogram analytics."""

import pytest

from repro.core.config import SMTConfig
from repro.core.histograms import Histogram, MetricsCollector
from repro.core.simulator import Simulator
from repro.core.trace import PipelineTracer, TraceRecord
from repro.isa.assembler import assemble

from tests.core.test_pipeline_timing import make_sim

LOOP = """
.text
_start:
    addi r1, r0, 1
loop:
    addi r2, r2, 1
    addi r3, r3, 1
    beqz r0, loop
"""


class TestHistogram:
    def test_basic_stats(self):
        h = Histogram("x")
        for v in (1, 2, 2, 3, 10):
            h.add(v)
        assert h.count == 5
        assert h.mean == pytest.approx(3.6)
        assert h.min == 1 and h.max == 10

    def test_percentiles(self):
        h = Histogram("x")
        for v in range(100):
            h.add(v)
        assert h.percentile(50) in (49, 50)
        assert h.percentile(99) >= 95
        assert h.percentile(0) == 0

    def test_bucketing(self):
        h = Histogram("x", bucket_width=10)
        h.add(5)
        h.add(14)
        h.add(15)
        assert h.buckets == {0: 1, 1: 2}

    def test_overflow_bucket_caps(self):
        h = Histogram("x", bucket_width=1, max_buckets=4)
        h.add(1000)
        assert max(h.buckets) == 3

    def test_merge(self):
        a, b = Histogram("x"), Histogram("x")
        a.add(1)
        b.add(3)
        a.merge(b)
        assert a.count == 2 and a.min == 1 and a.max == 3

    def test_merge_rejects_mismatched_width(self):
        with pytest.raises(ValueError):
            Histogram("x", 1).merge(Histogram("y", 2))

    def test_render_empty(self):
        assert "no samples" in Histogram("empty").render()

    def test_render_contains_bars(self):
        h = Histogram("x")
        for _ in range(5):
            h.add(2)
        out = h.render()
        assert "#" in out and "n=5" in out

    def test_bad_bucket_width(self):
        with pytest.raises(ValueError):
            Histogram("x", bucket_width=0)

    def test_bad_percentile(self):
        with pytest.raises(ValueError):
            Histogram("x").percentile(150)


class TestMetricsCollector:
    def test_collects_from_simulation(self):
        sim = make_sim(LOOP)
        collector = MetricsCollector(sim)
        for _ in range(100):
            sim.step()
        assert collector.queue_wait.count > 10
        assert collector.residency.count > 10
        assert collector.residency.mean >= 4  # 6-cycle min minus slack

    def test_fairness_single_thread(self):
        sim = make_sim(LOOP)
        collector = MetricsCollector(sim)
        for _ in range(60):
            sim.step()
        assert collector.fairness() == pytest.approx(1.0)

    def test_report_renders(self):
        sim = make_sim(LOOP)
        collector = MetricsCollector(sim)
        for _ in range(60):
            sim.step()
        report = collector.report()
        assert "queue wait" in report and "fairness" in report

    def test_detach_restores_listener(self):
        sim = make_sim(LOOP)
        sentinel = []
        sim.commit_listener = lambda u: sentinel.append(u)
        collector = MetricsCollector(sim)
        collector.detach()
        for _ in range(40):
            sim.step()
        assert sentinel  # original listener still active
        assert collector.residency.count == 0

    def test_chained_listeners(self):
        sim = make_sim(LOOP)
        sentinel = []
        sim.commit_listener = lambda u: sentinel.append(u)
        collector = MetricsCollector(sim)
        for _ in range(40):
            sim.step()
        assert sentinel and collector.residency.count == len(sentinel)


class TestPipelineTracer:
    def test_records_committed_instructions(self):
        sim = make_sim(LOOP)
        tracer = PipelineTracer(sim)
        for _ in range(60):
            sim.step()
        assert tracer.records
        first = tracer.records[0]
        assert first.fetch_c >= 0
        assert first.commit_c > first.fetch_c

    def test_records_squashed_wrong_path(self):
        source = """
        .text
        _start:
            beqz r0, target
            addi r1, r1, 1
            addi r2, r2, 1
        target:
            addi r3, r3, 1
        loop:
            j loop
        """
        sim = make_sim(source)
        tracer = PipelineTracer(sim)
        for _ in range(40):
            sim.step()
        squashed = [r for r in tracer.records if r.squashed]
        assert squashed
        assert all(r.commit_c == -1 for r in squashed)

    def test_render_shows_stage_letters(self):
        sim = make_sim(LOOP)
        tracer = PipelineTracer(sim)
        for _ in range(40):
            sim.step()
        text = tracer.render(0, 30)
        for letter in ("F", "D", "n", "I", "E", "C"):
            assert letter in text

    def test_window_filters_by_thread(self):
        sim = make_sim(LOOP)
        tracer = PipelineTracer(sim)
        for _ in range(40):
            sim.step()
        assert tracer.window(0, 40, tid=5) == []
        assert tracer.window(0, 40, tid=0)

    def test_max_records_cap(self):
        sim = make_sim(LOOP)
        tracer = PipelineTracer(sim, max_records=5)
        for _ in range(80):
            sim.step()
        assert len(tracer.records) == 5

    def test_lane_width_matches_window(self):
        record = TraceRecord(
            tid=0, seq=0, pc=0x10000, text="nop", wrong_path=False,
            squashed=False, fetch_c=2, decode_c=3, dispatch_c=4,
            issue_c=5, exec_c=8, complete_c=8, commit_c=9,
        )
        assert len(record.lane(0, 20)) == 20
        assert record.lane(0, 20)[2] == "F"
        assert record.lane(0, 20)[9] == "C"


class TestHybridPolicy:
    def test_icount_brcount_runs(self):
        from repro.core.config import scheme
        from repro.workloads.mixes import standard_mix
        config = scheme("ICOUNT_BRCOUNT", 2, 8, n_threads=4)
        sim = Simulator(config, standard_mix(4, 0))
        result = sim.run(warmup_cycles=200, measure_cycles=1500,
                         functional_warmup_instructions=8000)
        assert result.committed > 500

    def test_ordering_weights_branches(self):
        from repro.core.fetch_policy import priority_order
        from repro.core.queues import InstructionQueue
        from repro.core.thread import ThreadContext
        program = assemble(".text\nloop:\n j loop")
        threads = [ThreadContext(t, program) for t in range(2)]
        threads[0].unissued_count = 4     # no branches
        threads[1].unissued_count = 1
        threads[1].unresolved_branches = 2  # 1 + 3*2 = 7 > 4
        int_q = InstructionQueue("int", 32, 32)
        fp_q = InstructionQueue("fp", 32, 32)
        order = priority_order("ICOUNT_BRCOUNT", threads, 0, 0, 2,
                               int_q, fp_q)
        assert [t.tid for t in order] == [0, 1]
