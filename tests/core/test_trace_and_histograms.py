"""Tests for the pipeline tracer and the histogram analytics."""

import pytest

from repro.core.config import SMTConfig
from repro.core.histograms import Histogram, MetricsCollector
from repro.core.simulator import Simulator
from repro.core.trace import PipelineTracer, TraceRecord
from repro.isa.assembler import assemble

from tests.core.test_pipeline_timing import make_sim

LOOP = """
.text
_start:
    addi r1, r0, 1
loop:
    addi r2, r2, 1
    addi r3, r3, 1
    beqz r0, loop
"""


class TestHistogram:
    def test_basic_stats(self):
        h = Histogram("x")
        for v in (1, 2, 2, 3, 10):
            h.add(v)
        assert h.count == 5
        assert h.mean == pytest.approx(3.6)
        assert h.min == 1 and h.max == 10

    def test_percentiles(self):
        h = Histogram("x")
        for v in range(100):
            h.add(v)
        assert h.percentile(50) in (49, 50)
        assert h.percentile(99) >= 95
        assert h.percentile(0) == 0

    def test_bucketing(self):
        h = Histogram("x", bucket_width=10)
        h.add(5)
        h.add(14)
        h.add(15)
        assert h.buckets == {0: 1, 1: 2}

    def test_overflow_bucket_caps(self):
        h = Histogram("x", bucket_width=1, max_buckets=4)
        h.add(1000)
        assert max(h.buckets) == 3

    def test_merge(self):
        a, b = Histogram("x"), Histogram("x")
        a.add(1)
        b.add(3)
        a.merge(b)
        assert a.count == 2 and a.min == 1 and a.max == 3

    def test_merge_rejects_mismatched_width(self):
        with pytest.raises(ValueError):
            Histogram("x", 1).merge(Histogram("y", 2))

    def test_render_empty(self):
        assert "no samples" in Histogram("empty").render()

    def test_render_contains_bars(self):
        h = Histogram("x")
        for _ in range(5):
            h.add(2)
        out = h.render()
        assert "#" in out and "n=5" in out

    def test_render_shows_densest_buckets(self):
        # A long sparse head before the mode: the mode must still be
        # rendered (regression: render used to take the first max_rows
        # buckets in key order and hid it).
        h = Histogram("x")
        for v in range(20):
            h.add(v)          # 20 singleton buckets
        for _ in range(50):
            h.add(99)         # the mode, far out in the tail
        out = h.render(max_rows=12)
        assert "99" in out
        assert "     50 " in out
        # Shown rows stay in ascending key order.
        keys = [int(line.split()[0]) for line in out.splitlines()[1:]
                if line.strip() and line.split()[0].isdigit()]
        assert keys == sorted(keys)

    def test_render_hidden_bucket_count(self):
        h = Histogram("x")
        for v in range(30):
            h.add(v)
        out = h.render(max_rows=12)
        assert "18 more buckets" in out

    def test_to_dict(self):
        h = Histogram("lat", bucket_width=2)
        for v in (1, 2, 3, 9):
            h.add(v)
        d = h.to_dict()
        assert d["count"] == 4 and d["bucket_width"] == 2
        assert d["buckets"] == {"0": 1, "1": 2, "4": 1}
        assert d["min"] == 1 and d["max"] == 9

    def test_bad_bucket_width(self):
        with pytest.raises(ValueError):
            Histogram("x", bucket_width=0)

    def test_bad_percentile(self):
        with pytest.raises(ValueError):
            Histogram("x").percentile(150)


class TestMetricsCollector:
    def test_collects_from_simulation(self):
        sim = make_sim(LOOP)
        collector = MetricsCollector(sim)
        for _ in range(100):
            sim.step()
        assert collector.queue_wait.count > 10
        assert collector.residency.count > 10
        assert collector.residency.mean >= 4  # 6-cycle min minus slack

    def test_fairness_single_thread(self):
        sim = make_sim(LOOP)
        collector = MetricsCollector(sim)
        for _ in range(60):
            sim.step()
        assert collector.fairness() == pytest.approx(1.0)

    def test_report_renders(self):
        sim = make_sim(LOOP)
        collector = MetricsCollector(sim)
        for _ in range(60):
            sim.step()
        report = collector.report()
        assert "queue wait" in report and "fairness" in report

    def test_detach_restores_listener(self):
        sim = make_sim(LOOP)
        sentinel = []
        sim.commit_listener = lambda u: sentinel.append(u)
        collector = MetricsCollector(sim)
        collector.detach()
        for _ in range(40):
            sim.step()
        assert sentinel  # original listener still active
        assert collector.residency.count == 0

    def test_chained_listeners(self):
        sim = make_sim(LOOP)
        sentinel = []
        sim.commit_listener = lambda u: sentinel.append(u)
        collector = MetricsCollector(sim)
        for _ in range(40):
            sim.step()
        assert sentinel and collector.residency.count == len(sentinel)


class TestPipelineTracer:
    def test_records_committed_instructions(self):
        sim = make_sim(LOOP)
        tracer = PipelineTracer(sim)
        for _ in range(60):
            sim.step()
        assert tracer.records
        first = tracer.records[0]
        assert first.fetch_c >= 0
        assert first.commit_c > first.fetch_c

    def test_records_squashed_wrong_path(self):
        source = """
        .text
        _start:
            beqz r0, target
            addi r1, r1, 1
            addi r2, r2, 1
        target:
            addi r3, r3, 1
        loop:
            j loop
        """
        sim = make_sim(source)
        tracer = PipelineTracer(sim)
        for _ in range(40):
            sim.step()
        squashed = [r for r in tracer.records if r.squashed]
        assert squashed
        assert all(r.commit_c == -1 for r in squashed)

    def test_render_shows_stage_letters(self):
        sim = make_sim(LOOP)
        tracer = PipelineTracer(sim)
        for _ in range(40):
            sim.step()
        text = tracer.render(0, 30)
        for letter in ("F", "D", "n", "I", "E", "C"):
            assert letter in text

    def test_window_filters_by_thread(self):
        sim = make_sim(LOOP)
        tracer = PipelineTracer(sim)
        for _ in range(40):
            sim.step()
        assert tracer.window(0, 40, tid=5) == []
        assert tracer.window(0, 40, tid=0)

    def test_max_records_cap(self):
        sim = make_sim(LOOP)
        tracer = PipelineTracer(sim, max_records=5)
        for _ in range(80):
            sim.step()
        assert len(tracer.records) == 5

    def test_lane_width_matches_window(self):
        record = TraceRecord(
            tid=0, seq=0, pc=0x10000, text="nop", wrong_path=False,
            squashed=False, fetch_c=2, decode_c=3, dispatch_c=4,
            issue_c=5, exec_c=8, complete_c=8, commit_c=9,
        )
        assert len(record.lane(0, 20)) == 20
        assert record.lane(0, 20)[2] == "F"
        assert record.lane(0, 20)[9] == "C"

    def test_detach_restores_chained_squash_listener(self):
        # Regression: detach() used to null the squash listener instead
        # of restoring the one it displaced.
        source = """
        .text
        _start:
            beqz r0, target
            addi r1, r1, 1
            addi r2, r2, 1
        target:
            addi r3, r3, 1
        loop:
            j loop
        """
        sim = make_sim(source)
        squashed_seen = []
        on_squash = squashed_seen.append
        sim.squash_listener = on_squash
        committed_seen = []
        on_commit = committed_seen.append
        sim.commit_listener = on_commit
        tracer = PipelineTracer(sim, include_squashed=True)
        tracer.detach()
        assert sim.squash_listener is on_squash
        assert sim.commit_listener is on_commit
        for _ in range(40):
            sim.step()
        # The original listeners survived the attach/detach round trip.
        assert squashed_seen and committed_seen
        assert not tracer.records

    def test_attached_tracer_chains_both_listeners(self):
        source = """
        .text
        _start:
            beqz r0, target
            addi r1, r1, 1
        target:
        loop:
            j loop
        """
        sim = make_sim(source)
        squashed_seen = []
        sim.squash_listener = squashed_seen.append
        tracer = PipelineTracer(sim, include_squashed=True)
        for _ in range(40):
            sim.step()
        tracer_squashes = [r for r in tracer.records if r.squashed]
        assert len(squashed_seen) == len(tracer_squashes) > 0

    def test_start_cycle_skips_early_records(self):
        sim = make_sim(LOOP)
        tracer = PipelineTracer(sim, start_cycle=25)
        for _ in range(60):
            sim.step()
        assert tracer.records
        assert all(r.commit_c >= 25 for r in tracer.records
                   if not r.squashed)


def cell_string(record, end=24):
    return "".join(record._cell(c) for c in range(end))


class TestTraceRecordCell:
    """The per-cycle stage lettering state machine, probed directly."""

    def make(self, **overrides):
        fields = dict(
            tid=0, seq=0, pc=0x10000, text="nop", wrong_path=False,
            squashed=False, fetch_c=2, decode_c=3, dispatch_c=4,
            issue_c=7, exec_c=9, complete_c=12, commit_c=15,
        )
        fields.update(overrides)
        return TraceRecord(**fields)

    def test_full_lifecycle_lettering(self):
        lane = cell_string(self.make())
        #       0123456789...
        assert lane[:5] == "  FDn"
        assert lane[5:7] == ".."      # queued, waiting to issue
        assert lane[7] == "I"
        assert lane[8] == "-"         # in flight to execute
        assert lane[9] == "E"
        assert lane[10:13] == "==="   # completing (multi-cycle)
        assert lane[13:15] == "WW"    # done, waiting to commit
        assert lane[15] == "C"
        assert lane[16:] == " " * 8   # gone after commit

    def test_back_to_back_stages_have_no_queue_wait(self):
        record = self.make(issue_c=5, exec_c=6, complete_c=7, commit_c=8)
        lane = cell_string(record, 10)
        assert lane == "  FDnIE=C "

    def test_single_cycle_execute_skips_completing(self):
        record = self.make(issue_c=5, exec_c=6, complete_c=6, commit_c=8)
        lane = cell_string(record, 10)
        assert lane == "  FDnIEWC "

    def test_squashed_row_places_x_at_last_cycle(self):
        record = self.make(squashed=True, issue_c=-1, exec_c=-1,
                           complete_c=-1, commit_c=-1)
        lane = cell_string(record, 10)
        # fetch/decode/dispatch then the squash marker at the last
        # recorded stage cycle, blank afterwards.
        assert lane[2:5] == "FDn"
        assert lane[4] == "n"
        assert "x" not in lane[:4]
        assert record._cell(record.last_cycle()) in ("n", "x")

    def test_squashed_after_dispatch_shows_x_then_blank(self):
        record = self.make(squashed=True, issue_c=6, exec_c=-1,
                           complete_c=-1, commit_c=-1)
        assert record.last_cycle() == 6
        lane = cell_string(record, 12)
        assert lane[6] == "x"
        assert lane[7:] == " " * 5

    def test_wrong_path_flag_carried(self):
        record = self.make(wrong_path=True)
        assert record.wrong_path

    def test_never_fetched_cycles_blank(self):
        record = self.make()
        assert record._cell(0) == " " and record._cell(1) == " "

    def test_unissued_record_queues_forever(self):
        record = self.make(issue_c=-1, exec_c=-1, complete_c=-1,
                           commit_c=-1)
        lane = cell_string(record, 12)
        assert lane[5:] == "." * 7


class TestHybridPolicy:
    def test_icount_brcount_runs(self):
        from repro.core.config import scheme
        from repro.workloads.mixes import standard_mix
        config = scheme("ICOUNT_BRCOUNT", 2, 8, n_threads=4)
        sim = Simulator(config, standard_mix(4, 0))
        result = sim.run(warmup_cycles=200, measure_cycles=1500,
                         functional_warmup_instructions=8000)
        assert result.committed > 500

    def test_ordering_weights_branches(self):
        from repro.core.fetch_policy import priority_order
        from repro.core.queues import InstructionQueue
        from repro.core.thread import ThreadContext
        program = assemble(".text\nloop:\n j loop")
        threads = [ThreadContext(t, program) for t in range(2)]
        threads[0].unissued_count = 4     # no branches
        threads[1].unissued_count = 1
        threads[1].unresolved_branches = 2  # 1 + 3*2 = 7 > 4
        int_q = InstructionQueue("int", 32, 32)
        fp_q = InstructionQueue("fp", 32, 32)
        order = priority_order("ICOUNT_BRCOUNT", threads, 0, 0, 2,
                               int_q, fp_q)
        assert [t.tid for t in order] == [0, 1]
