"""Unit tests for the two-pass assembler."""

import pytest

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.instructions import Opcode, RegFile
from repro.isa.program import DATA_BASE, TEXT_BASE


def one(source_line: str):
    """Assemble a single instruction line and return it."""
    return assemble(".text\n" + source_line).instructions[0]


class TestBasicEncoding:
    def test_three_register_add(self):
        instr = one("add r1, r2, r3")
        assert instr.opcode is Opcode.ADD
        assert (instr.rd, instr.rs1, instr.rs2) == (1, 2, 3)

    def test_immediate_add(self):
        instr = one("addi r1, r2, -5")
        assert instr.opcode is Opcode.ADDI
        assert instr.imm == -5

    def test_load_immediate(self):
        instr = one("li r7, 0x1234")
        assert instr.opcode is Opcode.LI
        assert instr.imm == 0x1234

    def test_shifts(self):
        assert one("slli r1, r2, 3").imm == 3
        assert one("srl r1, r2, r3").opcode is Opcode.SRL

    def test_multiplies(self):
        assert one("mul r1, r2, r3").opcode is Opcode.MUL
        assert one("mulq r1, r2, r3").opcode is Opcode.MULQ

    def test_compares(self):
        assert one("cmplt r1, r2, r3").opcode is Opcode.CMPLT
        assert one("cmpeq r1, r2, r3").opcode is Opcode.CMPEQ
        assert one("cmple r1, r2, r3").opcode is Opcode.CMPLE

    def test_conditional_moves(self):
        assert one("cmovz r1, r2, r3").opcode is Opcode.CMOVZ
        assert one("cmovnz r1, r2, r3").opcode is Opcode.CMOVNZ

    def test_case_insensitive_mnemonics(self):
        assert one("ADD r1, r2, r3").opcode is Opcode.ADD


class TestMemoryEncoding:
    def test_load(self):
        instr = one("ld r4, 16(r2)")
        assert instr.opcode is Opcode.LD
        assert (instr.rd, instr.rs1, instr.imm) == (4, 2, 16)

    def test_store_operand_order(self):
        """st rVALUE, disp(rBASE): base in rs1, value in rs2."""
        instr = one("st r4, 8(r2)")
        assert instr.rs1 == 2 and instr.rs2 == 4 and instr.imm == 8

    def test_fp_load(self):
        instr = one("fld f3, 0(r5)")
        assert instr.opcode is Opcode.FLD
        assert instr.rd_file is RegFile.FP
        assert instr.rs1_file is RegFile.INT

    def test_fp_store(self):
        instr = one("fst f3, 0(r5)")
        assert instr.rs2 == 3 and instr.rs2_file is RegFile.FP

    def test_negative_displacement(self):
        assert one("ld r1, -8(r29)").imm == -8

    def test_ld_into_fp_register_rejected(self):
        with pytest.raises(AssemblyError):
            one("ld f1, 0(r2)")

    def test_fld_into_int_register_rejected(self):
        with pytest.raises(AssemblyError):
            one("fld r1, 0(r2)")


class TestFpEncoding:
    def test_fadd(self):
        instr = one("fadd f1, f2, f3")
        assert instr.rd_file is RegFile.FP
        assert all(f is RegFile.FP for _, f in instr.sources())

    def test_fp_op_rejects_int_registers(self):
        with pytest.raises(AssemblyError):
            one("fadd f1, r2, f3")

    def test_fcmp_writes_integer(self):
        instr = one("fcmp r1, f2, f3")
        assert instr.rd_file is RegFile.INT
        assert instr.rs1_file is RegFile.FP

    def test_fcmp_rejects_fp_destination(self):
        with pytest.raises(AssemblyError):
            one("fcmp f1, f2, f3")

    def test_fmov_fcvt(self):
        assert one("fmov f1, f2").opcode is Opcode.FMOV
        assert one("fcvt f1, f2").opcode is Opcode.FCVT


class TestControlFlow:
    def test_forward_label(self):
        program = assemble("""
        .text
        _start:
            beqz r1, done
            nop
        done:
            halt
        """)
        assert program.instructions[0].target == TEXT_BASE + 8

    def test_backward_label(self):
        program = assemble("""
        .text
        loop:
            addi r1, r1, -1
            bnez r1, loop
        """)
        assert program.instructions[1].target == TEXT_BASE

    def test_jal_writes_r31(self):
        program = assemble(".text\nf:\n jal f")
        assert program.instructions[0].rd == 31

    def test_ret_reads_r31(self):
        instr = one("ret")
        assert instr.rs1 == 31

    def test_jr(self):
        instr = one("jr r9")
        assert instr.opcode is Opcode.JR and instr.rs1 == 9

    def test_numeric_target(self):
        instr = one(f"j {TEXT_BASE}")
        assert instr.target == TEXT_BASE

    def test_misaligned_target_rejected(self):
        with pytest.raises(AssemblyError):
            one("j 0x10002")


class TestDataSegment:
    def test_word_directive(self):
        program = assemble("""
        .data
        x: .word 42
        .text
            nop
        """)
        assert program.data.words[DATA_BASE] == 42
        assert program.symbols["x"] == DATA_BASE

    def test_multiple_words(self):
        program = assemble("""
        .data
        t: .word 1, 2, 3
        .text
            nop
        """)
        assert [program.data.words[DATA_BASE + 8 * i] for i in range(3)] == [1, 2, 3]

    def test_space_directive(self):
        program = assemble("""
        .data
        a: .space 64
        b: .word 9
        .text
            nop
        """)
        assert program.symbols["b"] == DATA_BASE + 64
        assert program.data.words[DATA_BASE + 64] == 9

    def test_space_must_be_word_multiple(self):
        with pytest.raises(AssemblyError):
            assemble(".data\nx: .space 7\n.text\nnop")

    def test_data_label_as_immediate(self):
        program = assemble("""
        .data
        buf: .space 16
        .text
            li r1, buf
        """)
        assert program.instructions[0].imm == DATA_BASE

    def test_data_label_as_displacement(self):
        program = assemble("""
        .data
        g: .space 16
        .text
            ld r1, g(r0)
        """)
        assert program.instructions[0].imm == DATA_BASE


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            one("frobnicate r1, r2")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError, match="expects"):
            one("add r1, r2")

    def test_bad_register(self):
        with pytest.raises(AssemblyError):
            one("add r1, r2, r99")

    def test_undefined_label(self):
        with pytest.raises(AssemblyError):
            one("j nowhere")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError, match="duplicate"):
            assemble(".text\na:\n nop\na:\n nop")

    def test_error_carries_line_number(self):
        try:
            assemble(".text\nnop\nbogus r1\n")
        except AssemblyError as e:
            assert e.line_no == 3
        else:
            pytest.fail("expected AssemblyError")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblyError, match="disp"):
            one("ld r1, r2")

    def test_empty_program_rejected(self):
        with pytest.raises(Exception):
            assemble(".text\n")


class TestStructure:
    def test_comments_stripped(self):
        program = assemble("""
        .text
            nop  # hash comment
            nop  ; semicolon comment
        """)
        assert len(program.instructions) == 2

    def test_label_on_own_line(self):
        program = assemble("""
        .text
        here:
            nop
        """)
        assert program.symbols["here"] == TEXT_BASE

    def test_label_inline_with_instruction(self):
        program = assemble(".text\nstart: nop")
        assert program.symbols["start"] == TEXT_BASE

    def test_entry_is_start_symbol(self):
        program = assemble(".text\n nop\n_start:\n nop")
        assert program.entry == TEXT_BASE + 4

    def test_entry_defaults_to_text_base(self):
        program = assemble(".text\n nop")
        assert program.entry == TEXT_BASE

    def test_listing_contains_labels_and_addresses(self):
        program = assemble(".text\nmain:\n addi r1, r1, 1")
        listing = program.listing()
        assert "main:" in listing
        assert "addi" in listing
