"""Unit tests for the program image container."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import (
    DataSegment,
    INSTR_BYTES,
    Program,
    TEXT_BASE,
)


@pytest.fixture
def program():
    return assemble("""
    .text
    _start:
        li r1, 1
        li r2, 2
        add r3, r1, r2
        halt
    """)


class TestAddressing:
    def test_text_bounds(self, program):
        assert program.text_start == TEXT_BASE
        assert program.text_end == TEXT_BASE + 4 * INSTR_BYTES

    def test_address_of_and_index_of_roundtrip(self, program):
        for i in range(len(program)):
            assert program.index_of(program.address_of(i)) == i

    def test_address_of_out_of_range(self, program):
        with pytest.raises(IndexError):
            program.address_of(99)

    def test_index_of_rejects_outside(self, program):
        with pytest.raises(ValueError):
            program.index_of(TEXT_BASE - 4)

    def test_in_text(self, program):
        assert program.in_text(TEXT_BASE)
        assert program.in_text(program.text_end - 4)
        assert not program.in_text(program.text_end)
        assert not program.in_text(TEXT_BASE + 2)  # misaligned


class TestFetchTotality:
    """fetch() must be total: wrong paths can ask for any address."""

    def test_fetch_valid(self, program):
        instr = program.fetch(TEXT_BASE + 8)
        assert instr.opcode is Opcode.ADD

    def test_fetch_below_text(self, program):
        assert program.fetch(TEXT_BASE - 4) is None

    def test_fetch_past_end(self, program):
        assert program.fetch(program.text_end) is None

    def test_fetch_misaligned(self, program):
        assert program.fetch(TEXT_BASE + 1) is None

    def test_fetch_huge_address(self, program):
        assert program.fetch(1 << 40) is None


class TestConstruction:
    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            Program([])

    def test_default_data_segment(self):
        p = Program([Instruction(Opcode.NOP)])
        assert p.data.size > 0
        assert p.data.read(0x1000000) == 0

    def test_data_segment_read_alignment(self):
        seg = DataSegment(words={0x1000000: 5})
        assert seg.read(0x1000003) == 5  # sub-word address reads its word

    def test_repr(self, program):
        assert "instructions=4" in repr(program)
