"""Unit tests for the instruction definitions (paper Table 1)."""

import pytest

from repro.isa.instructions import (
    INSTRUCTION_LATENCIES,
    Instruction,
    InstrClass,
    MNEMONIC_TO_OPCODE,
    Opcode,
    RegFile,
    latency_for,
)


class TestTable1Latencies:
    """The simulated latencies must match Table 1 of the paper."""

    def test_integer_multiply(self):
        assert latency_for(InstrClass.INT_MUL) == 8
        assert latency_for(InstrClass.INT_MULQ) == 16

    def test_conditional_move(self):
        assert latency_for(InstrClass.INT_CMOV) == 2

    def test_compare_is_zero_latency(self):
        assert latency_for(InstrClass.INT_CMP) == 0

    def test_all_other_integer(self):
        assert latency_for(InstrClass.INT_ALU) == 1

    def test_fp_divide(self):
        assert latency_for(InstrClass.FP_DIV) == 17
        assert latency_for(InstrClass.FP_DIVD) == 30

    def test_all_other_fp(self):
        assert latency_for(InstrClass.FP_ALU) == 4

    def test_load_cache_hit(self):
        assert latency_for(InstrClass.LOAD) == 1

    def test_every_class_has_a_latency(self):
        for iclass in InstrClass:
            assert iclass in INSTRUCTION_LATENCIES


class TestOpcodeTable:
    def test_mnemonics_unique(self):
        mnemonics = [op.mnemonic for op in Opcode]
        assert len(mnemonics) == len(set(mnemonics))

    def test_mnemonic_lookup_covers_all(self):
        assert len(MNEMONIC_TO_OPCODE) == len(list(Opcode))

    def test_iclass_access(self):
        assert Opcode.FDIV.iclass is InstrClass.FP_DIV
        assert Opcode.LD.iclass is InstrClass.LOAD
        assert Opcode.BEQZ.iclass is InstrClass.BRANCH


class TestClassificationPredicates:
    def test_conditional_branch(self):
        instr = Instruction(Opcode.BEQZ, rs1=1, target=0x10000)
        assert instr.is_control
        assert instr.is_cond_branch
        assert not instr.is_jump
        assert not instr.is_mem

    def test_direct_jump(self):
        instr = Instruction(Opcode.J, target=0x10000)
        assert instr.is_control and instr.is_jump
        assert not instr.is_indirect
        assert not instr.is_cond_branch

    def test_call_writes_link_register(self):
        instr = Instruction(Opcode.JAL, rd=31, target=0x10000)
        assert instr.is_call and instr.is_jump
        assert instr.writes_reg and instr.rd == 31

    def test_return_is_indirect(self):
        instr = Instruction(Opcode.RET, rs1=31)
        assert instr.is_return and instr.is_indirect and instr.is_control

    def test_jr_is_indirect_but_not_return(self):
        instr = Instruction(Opcode.JR, rs1=9)
        assert instr.is_indirect and not instr.is_return

    def test_load_store(self):
        ld = Instruction(Opcode.LD, rd=1, rs1=2)
        st = Instruction(Opcode.ST, rs1=2, rs2=1)
        assert ld.is_load and ld.is_mem and not ld.is_store
        assert st.is_store and st.is_mem and not st.is_load

    def test_fp_queue_routing(self):
        """FP arithmetic goes to the FP queue; FP loads/stores go to the
        integer queue (paper: the integer queue handles *all* memory)."""
        fadd = Instruction(Opcode.FADD, rd=1, rs1=2, rs2=3,
                           rd_file=RegFile.FP, rs1_file=RegFile.FP,
                           rs2_file=RegFile.FP)
        fld = Instruction(Opcode.FLD, rd=1, rs1=2, rd_file=RegFile.FP)
        assert fadd.is_fp
        assert not fld.is_fp
        assert fld.is_load

    def test_sources_pairs(self):
        instr = Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)
        assert instr.sources() == ((2, RegFile.INT), (3, RegFile.INT))

    def test_sources_store_includes_value(self):
        st = Instruction(Opcode.ST, rs1=2, rs2=7)
        assert (7, RegFile.INT) in st.sources()
        assert (2, RegFile.INT) in st.sources()

    def test_sources_empty_for_nop(self):
        assert Instruction(Opcode.NOP).sources() == ()

    def test_latency_property_matches_table(self):
        assert Instruction(Opcode.MUL, rd=1, rs1=2, rs2=3).latency == 8
        assert Instruction(Opcode.FDIVD, rd=1, rs1=2, rs2=3,
                           rd_file=RegFile.FP, rs1_file=RegFile.FP,
                           rs2_file=RegFile.FP).latency == 30


class TestInstructionFormatting:
    def test_str_load(self):
        instr = Instruction(Opcode.LD, rd=4, rs1=1, imm=16)
        assert str(instr) == "ld r4, 16(r1)"

    def test_str_store(self):
        instr = Instruction(Opcode.ST, rs1=1, rs2=5, imm=8)
        assert str(instr) == "st r5, 8(r1)"

    def test_str_branch(self):
        instr = Instruction(Opcode.BNEZ, rs1=2, target=0x10040)
        assert "bnez r2" in str(instr)
        assert "0x10040" in str(instr)

    def test_str_fp(self):
        instr = Instruction(Opcode.FADD, rd=1, rs1=2, rs2=3,
                            rd_file=RegFile.FP, rs1_file=RegFile.FP,
                            rs2_file=RegFile.FP)
        assert str(instr) == "fadd f1, f2, f3"

    def test_str_nullary(self):
        assert str(Instruction(Opcode.NOP)) == "nop"
        assert str(Instruction(Opcode.RET, rs1=31)) == "ret"

    def test_frozen(self):
        instr = Instruction(Opcode.NOP)
        with pytest.raises(Exception):
            instr.rd = 5
