"""Property-based tests for the ISA substrate (hypothesis)."""

import random

from hypothesis import given, settings, strategies as st

from repro.isa.assembler import assemble
from repro.isa.emulator import Emulator
from repro.isa.program import TEXT_BASE

_MASK64 = (1 << 64) - 1


# ----------------------------------------------------------------------
# Random straight-line integer programs: the emulator must agree with a
# direct Python evaluation of the same operations.
# ----------------------------------------------------------------------
_OPS = ("add", "sub", "and", "or", "xor")

op_strategy = st.tuples(
    st.sampled_from(_OPS),
    st.integers(1, 10),   # rd
    st.integers(1, 10),   # rs1
    st.integers(1, 10),   # rs2
)


@st.composite
def straightline_programs(draw):
    inits = draw(
        st.lists(st.integers(0, 2**32), min_size=10, max_size=10)
    )
    ops = draw(st.lists(op_strategy, min_size=1, max_size=40))
    return inits, ops


def _python_eval(inits, ops):
    regs = [0] * 32
    for i, v in enumerate(inits, start=1):
        regs[i] = v & _MASK64
    for op, rd, rs1, rs2 in ops:
        a, b = regs[rs1], regs[rs2]
        if op == "add":
            r = a + b
        elif op == "sub":
            r = a - b
        elif op == "and":
            r = a & b
        elif op == "or":
            r = a | b
        else:
            r = a ^ b
        regs[rd] = r & _MASK64
    return regs


@given(straightline_programs())
@settings(max_examples=60, deadline=None)
def test_emulator_matches_python_evaluation(case):
    inits, ops = case
    lines = [".text"]
    for i, v in enumerate(inits, start=1):
        lines.append(f"li r{i}, {v}")
    for op, rd, rs1, rs2 in ops:
        lines.append(f"{op} r{rd}, r{rs1}, r{rs2}")
    lines.append("halt")
    emulator = Emulator(assemble("\n".join(lines)))
    emulator.run()
    expected = _python_eval(inits, ops)
    assert emulator.int_regs[1:11] == expected[1:11]


# ----------------------------------------------------------------------
# Assembly round trips: every emitted instruction is addressable and the
# label map is consistent.
# ----------------------------------------------------------------------
@given(st.integers(1, 60), st.integers(0, 2**31))
@settings(max_examples=40, deadline=None)
def test_assembled_program_is_addressable(n_instructions, seed):
    rng = random.Random(seed)
    lines = [".text", "_start:"]
    for i in range(n_instructions):
        kind = rng.randrange(3)
        if kind == 0:
            lines.append(f"addi r{rng.randrange(1, 31)}, r{rng.randrange(1, 31)}, {rng.randrange(100)}")
        elif kind == 1:
            lines.append(f"add r{rng.randrange(1, 31)}, r{rng.randrange(1, 31)}, r{rng.randrange(1, 31)}")
        else:
            lines.append("nop")
    lines.append("halt")
    program = assemble("\n".join(lines))
    assert len(program) == n_instructions + 1
    for i in range(len(program)):
        pc = program.address_of(i)
        assert program.fetch(pc) is program.instructions[i]
    assert program.symbols["_start"] == TEXT_BASE


# ----------------------------------------------------------------------
# Loops with data-independent trip counts terminate with the expected
# iteration count (oracle control flow is exact).
# ----------------------------------------------------------------------
@given(st.integers(1, 200))
@settings(max_examples=30, deadline=None)
def test_counted_loop_iterations(trip):
    source = f"""
    .text
        li r1, {trip}
        li r2, 0
    loop:
        addi r2, r2, 1
        addi r1, r1, -1
        bnez r1, loop
        halt
    """
    emulator = Emulator(assemble(source))
    emulator.run(max_instructions=trip * 3 + 10)
    assert emulator.int_regs[2] == trip
    assert emulator.halted
