"""Unit tests for the functional emulator (oracle semantics)."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.emulator import Emulator, EmulatorError
from repro.isa.program import DATA_BASE, TEXT_BASE


def run(source: str, max_instructions: int = 10000) -> Emulator:
    emulator = Emulator(assemble(source))
    emulator.run(max_instructions)
    return emulator


class TestIntegerArithmetic:
    def test_add_sub(self):
        e = run(".text\n li r1, 7\n li r2, 5\n add r3, r1, r2\n sub r4, r1, r2\n halt")
        assert e.int_regs[3] == 12
        assert e.int_regs[4] == 2

    def test_subtraction_wraps_to_64_bits(self):
        e = run(".text\n li r1, 0\n li r2, 1\n sub r3, r1, r2\n halt")
        assert e.int_regs[3] == (1 << 64) - 1

    def test_logic_ops(self):
        e = run(".text\n li r1, 12\n li r2, 10\n and r3, r1, r2\n"
                " or r4, r1, r2\n xor r5, r1, r2\n halt")
        assert e.int_regs[3] == 8
        assert e.int_regs[4] == 14
        assert e.int_regs[5] == 6

    def test_shifts(self):
        e = run(".text\n li r1, 1\n slli r2, r1, 4\n li r3, 256\n"
                " srli r4, r3, 4\n halt")
        assert e.int_regs[2] == 16
        assert e.int_regs[4] == 16

    def test_sra_sign_extends(self):
        e = run(".text\n li r1, -8\n li r2, 1\n sra r3, r1, r2\n halt")
        assert e.int_regs[3] == ((1 << 64) - 4)  # -4 as unsigned

    def test_multiply(self):
        e = run(".text\n li r1, 6\n li r2, 7\n mul r3, r1, r2\n"
                " mulq r4, r1, r2\n halt")
        assert e.int_regs[3] == 42
        assert e.int_regs[4] == 42

    def test_compares_signed(self):
        e = run(".text\n li r1, -1\n li r2, 1\n cmplt r3, r1, r2\n"
                " cmplt r4, r2, r1\n cmpeq r5, r1, r1\n cmple r6, r1, r1\n halt")
        assert e.int_regs[3] == 1
        assert e.int_regs[4] == 0
        assert e.int_regs[5] == 1
        assert e.int_regs[6] == 1

    def test_conditional_moves(self):
        e = run(".text\n li r1, 0\n li r2, 9\n cmovz r3, r1, r2\n"
                " cmovnz r4, r1, r2\n halt")
        assert e.int_regs[3] == 9  # condition zero: select
        assert e.int_regs[4] == 0

    def test_r0_is_hardwired_zero(self):
        e = run(".text\n li r0, 99\n add r1, r0, r0\n halt")
        assert e.int_regs[0] == 0
        assert e.int_regs[1] == 0


class TestFloatingPoint:
    def test_fp_arithmetic_via_memory(self):
        e = run("""
        .data
        a: .word 6
        b: .word 3
        .text
            li r1, a
            fld f1, 0(r1)
            fld f2, 8(r1)
            fadd f3, f1, f2
            fsub f4, f1, f2
            fmul f5, f1, f2
            fdiv f6, f1, f2
            halt
        """)
        assert e.fp_regs[3] == 9.0
        assert e.fp_regs[4] == 3.0
        assert e.fp_regs[5] == 18.0
        assert e.fp_regs[6] == 2.0

    def test_fdiv_by_zero_yields_zero(self):
        e = run("""
        .data
        a: .word 5
        .text
            li r1, a
            fld f1, 0(r1)
            fdiv f2, f1, f0
            fdivd f3, f1, f0
            halt
        """)
        assert e.fp_regs[2] == 0.0
        assert e.fp_regs[3] == 0.0

    def test_fcmp(self):
        e = run("""
        .data
        v: .word 1, 2
        .text
            li r1, v
            fld f1, 0(r1)
            fld f2, 8(r1)
            fcmp r2, f1, f2
            fcmp r3, f2, f1
            halt
        """)
        assert e.int_regs[2] == 1
        assert e.int_regs[3] == 0

    def test_fst_roundtrip(self):
        e = run("""
        .data
        v: .word 4
        buf: .space 8
        .text
            li r1, v
            fld f1, 0(r1)
            fmul f2, f1, f1
            fst f2, 8(r1)
            fld f3, 8(r1)
            halt
        """)
        assert e.fp_regs[3] == 16.0


class TestMemory:
    def test_store_load_roundtrip(self):
        e = run("""
        .data
        buf: .space 16
        .text
            li r1, buf
            li r2, 1234
            st r2, 8(r1)
            ld r3, 8(r1)
            halt
        """)
        assert e.int_regs[3] == 1234

    def test_initialised_data_readable(self):
        e = run("""
        .data
        x: .word 77
        .text
            li r1, x
            ld r2, 0(r1)
            halt
        """)
        assert e.int_regs[2] == 77

    def test_uninitialised_reads_zero(self):
        e = run("""
        .data
        buf: .space 32
        .text
            li r1, buf
            ld r2, 24(r1)
            halt
        """)
        assert e.int_regs[2] == 0

    def test_addresses_wrap_into_data_region(self):
        # An out-of-range address must not crash; it wraps into the
        # data region (synthetic programs stay in-bounds by masking,
        # the wrap is a safety net).
        e = run(f"""
        .text
            li r1, {DATA_BASE + (1 << 30)}
            ld r2, 0(r1)
            halt
        """)
        assert e.halted

    def test_oracle_reports_effective_address(self):
        emulator = Emulator(assemble("""
        .data
        buf: .space 16
        .text
            li r1, buf
            ld r2, 8(r1)
            halt
        """))
        emulator.step()
        record = emulator.step()
        assert record.eff_addr == DATA_BASE + 8


class TestControlFlow:
    def test_taken_branch(self):
        emulator = Emulator(assemble("""
        .text
            beqz r0, over
            li r1, 1
        over:
            halt
        """))
        record = emulator.step()
        assert record.taken
        assert record.next_pc == TEXT_BASE + 8
        emulator.run()
        assert emulator.int_regs[1] == 0

    def test_not_taken_branch(self):
        emulator = Emulator(assemble("""
        .text
            li r1, 5
            bnez r0, away
            li r2, 2
        away:
            halt
        """))
        emulator.step()
        record = emulator.step()
        assert not record.taken
        assert record.next_pc == TEXT_BASE + 8

    def test_loop_counts(self):
        e = run("""
        .text
            li r1, 10
            li r2, 0
        loop:
            addi r2, r2, 1
            addi r1, r1, -1
            bnez r1, loop
            halt
        """)
        assert e.int_regs[2] == 10

    def test_call_and_return(self):
        e = run("""
        .text
        _start:
            jal fn
            li r2, 99
            halt
        fn:
            li r1, 42
            ret
        """)
        assert e.int_regs[1] == 42
        assert e.int_regs[2] == 99
        assert e.int_regs[31] == TEXT_BASE + 4

    def test_indirect_jump(self):
        e = run(f"""
        .text
            li r9, {TEXT_BASE + 12}
            jr r9
            li r1, 1
            li r2, 2
            halt
        """)
        assert e.int_regs[1] == 0
        assert e.int_regs[2] == 2

    def test_indirect_jump_to_invalid_target_raises(self):
        emulator = Emulator(assemble(".text\n li r9, 12345677\n jr r9\n halt"))
        emulator.step()
        with pytest.raises(EmulatorError):
            emulator.step()

    def test_recursion_depth(self):
        e = run(f"""
        .data
        stack: .space 1024
        .text
        _start:
            li r29, {DATA_BASE + 1016}
            li r20, 5
            jal rec
            halt
        rec:
            addi r29, r29, -16
            st r31, 0(r29)
            addi r21, r21, 1
            addi r20, r20, -1
            beqz r20, base
            jal rec
        base:
            ld r31, 0(r29)
            addi r29, r29, 16
            ret
        """)
        assert e.int_regs[21] == 5


class TestLifecycle:
    def test_halt_sets_flag_and_stops(self):
        emulator = Emulator(assemble(".text\n halt"))
        emulator.step()
        assert emulator.halted
        with pytest.raises(EmulatorError):
            emulator.step()

    def test_run_respects_budget(self):
        emulator = Emulator(assemble(".text\nloop:\n j loop"))
        retired = emulator.run(max_instructions=100)
        assert retired == 100
        assert not emulator.halted

    def test_instret_counts(self):
        e = run(".text\n nop\n nop\n halt")
        assert e.instret == 3

    def test_determinism(self):
        src = """
        .data
        buf: .space 64
        .text
            li r1, buf
        loop:
            ld r2, 0(r1)
            add r3, r3, r2
            addi r1, r1, 8
            andi r1, r1, 56
            j loop
        """
        a, b = Emulator(assemble(src)), Emulator(assemble(src))
        for _ in range(500):
            ra, rb = a.step(), b.step()
            assert (ra.pc, ra.next_pc, ra.eff_addr, ra.taken) == (
                rb.pc, rb.next_pc, rb.eff_addr, rb.taken
            )
