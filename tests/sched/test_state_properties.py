"""Property tests: lease transitions never lose or duplicate a task.

A random interleaving of claims, heartbeats, clock advances, lease
expiries, reclaims, completions, and duplicate terminal records is
applied to the replayed state.  Whatever the interleaving:

* the task population is exactly the submitted set (nothing lost,
  nothing invented, nothing listed twice);
* a terminal task stays terminal with its first outcome;
* a task is never simultaneously claimable and leased;
* reclaiming every expired lease until quiescence leaves each task
  either terminal or claimable-in-the-future — never stuck.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.sched.state import (
    CampaignState,
    TERMINAL_STATES,
    plan_reclaim,
)

KEYS = ["t0", "t1", "t2", "t3"]
WORKERS = ["w0", "w1", "w2"]
TTL = 10.0

op = st.one_of(
    st.tuples(st.just("claim"), st.sampled_from(WORKERS)),
    st.tuples(st.just("heartbeat"), st.sampled_from(WORKERS)),
    st.tuples(st.just("advance"), st.floats(min_value=0.5, max_value=30.0)),
    st.just(("reclaim",)),
    st.tuples(st.just("done"), st.sampled_from(KEYS),
              st.sampled_from(WORKERS)),
    st.tuples(st.just("fail"), st.sampled_from(KEYS),
              st.sampled_from(WORKERS)),
)


class Harness:
    """Drives a CampaignState the way a worker pool would: every
    mutation is a journal record, every decision comes from replayed
    state — the same discipline as repro.sched.worker."""

    def __init__(self):
        self.state = CampaignState()
        self.now = 0.0
        self.leased_by = {}          # worker -> key
        for key in KEYS:
            self.state.apply({"event": "submit", "key": key})

    def claim(self, worker):
        if worker in self.leased_by:
            return
        task = self.state.claimable(self.now)
        if task is None:
            return
        self.state.apply({"event": "lease", "key": task.key,
                          "worker": worker, "attempt": task.attempt + 1,
                          "expires": self.now + TTL})
        self.leased_by[worker] = task.key

    def heartbeat(self, worker):
        key = self.leased_by.get(worker)
        if key is None:
            return
        task = self.state.tasks[key]
        if task.lease is None or task.lease.worker != worker:
            self.leased_by.pop(worker, None)   # lease was reclaimed
            return
        self.state.apply({"event": "heartbeat", "key": key,
                          "worker": worker, "expires": self.now + TTL})

    def reclaim(self):
        for task in self.state.expired_leases(self.now):
            record = plan_reclaim(task, self.now, max_attempts=100,
                                  poison_threshold=100, backoff=0.5)
            self.state.apply(record)

    def finish(self, event, key, worker):
        # Workers finish whatever they hold — including a lease that
        # already expired and was reclaimed (the duplicate-terminal
        # race the journal must absorb).
        record = {"event": event, "key": key, "worker": worker}
        if event == "failed":
            record["failure"] = {"kind": "crash", "message": "prop"}
        self.state.apply(record)
        if self.leased_by.get(worker) == key:
            del self.leased_by[worker]

    def run(self, ops):
        for action in ops:
            if action[0] == "claim":
                self.claim(action[1])
            elif action[0] == "heartbeat":
                self.heartbeat(action[1])
            elif action[0] == "advance":
                self.now += action[1]
            elif action[0] == "reclaim":
                self.reclaim()
            else:
                self.finish("done" if action[0] == "done" else "failed",
                            action[1], action[2])
            self.check()

    def check(self):
        state = self.state
        assert sorted(state.order) == sorted(KEYS), "task lost or invented"
        assert len(set(state.order)) == len(KEYS), "task duplicated"
        for task in state.iter_tasks():
            if task.terminal:
                assert task.lease is None
            if task.status == "leased":
                assert task.lease is not None


@settings(max_examples=200, deadline=None)
@given(st.lists(op, max_size=40))
def test_no_interleaving_loses_or_duplicates_a_task(ops):
    harness = Harness()
    harness.run(ops)


@settings(max_examples=200, deadline=None)
@given(st.lists(op, max_size=40))
def test_first_terminal_outcome_is_sticky(ops):
    harness = Harness()
    outcomes = {}

    original_apply = harness.state.apply

    def apply(record):
        original_apply(record)
        for key in KEYS:
            task = harness.state.tasks[key]
            if task.terminal and key not in outcomes:
                outcomes[key] = (task.status, task.completed_by)

    harness.state.apply = apply
    harness.run(ops)
    for key, (status, completed_by) in outcomes.items():
        task = harness.state.tasks[key]
        assert (task.status, task.completed_by) == (status, completed_by)


@settings(max_examples=150, deadline=None)
@given(st.lists(op, max_size=40))
def test_reclaim_to_quiescence_never_strands_a_task(ops):
    """After any interleaving, expire + reclaim everything: each task
    must be terminal or claimable once its backoff gate opens."""
    harness = Harness()
    harness.run(ops)
    harness.now += TTL + 1.0
    harness.reclaim()
    for task in harness.state.iter_tasks():
        if not task.terminal:
            assert task.status == "pending"
            wake = harness.state.next_wake(harness.now)
            assert task.not_before <= harness.now or wake is not None


@settings(max_examples=100, deadline=None)
@given(st.lists(op, max_size=60))
def test_terminal_count_matches_distinct_terminal_keys(ops):
    """done + failed + quarantined == number of distinct keys with a
    terminal record — duplicates counted separately, never as tasks."""
    harness = Harness()
    terminal_keys = set()
    extra_terminals = 0

    for action in ops:
        if action[0] in ("done", "fail"):
            key = action[1]
            if key in terminal_keys:
                extra_terminals += 1
            terminal_keys.add(key)
    harness.run(ops)

    counts = harness.state.counts()
    terminal_total = (counts["done"] + counts["failed"]
                      + counts["quarantined"])
    assert terminal_total == len(terminal_keys)
    assert counts["duplicates"] == extra_terminals
    assert counts["total"] == len(KEYS)
