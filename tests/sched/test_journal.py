"""The durable journal: appends, locking, torn tails, fsync routing."""

import json
import os

import pytest

from repro.sched.journal import (
    JOURNAL_SCHEMA,
    JOURNAL_SCHEMA_VERSION,
    JournalWriter,
    journal_fsync_enabled,
    journal_path,
    lock_journal,
    read_records,
)


def _data_records(directory):
    """Journal records minus the schema header."""
    return [r for r in read_records(directory) if "event" in r]


class TestWriter:
    def test_fresh_journal_gets_schema_header(self, tmp_path):
        directory = str(tmp_path / "camp")
        with JournalWriter(directory) as writer:
            writer.append({"event": "submit", "key": "k1"})
        records = read_records(directory)
        assert records[0] == {"schema": JOURNAL_SCHEMA,
                              "schema_version": JOURNAL_SCHEMA_VERSION}
        assert records[1]["event"] == "submit"

    def test_reopen_does_not_rewrite_header(self, tmp_path):
        directory = str(tmp_path)
        with JournalWriter(directory) as writer:
            writer.append({"event": "a"})
        with JournalWriter(directory) as writer:
            writer.append({"event": "b"})
        headers = [r for r in read_records(directory) if "schema" in r]
        assert len(headers) == 1

    def test_append_is_one_line_compact_json(self, tmp_path):
        directory = str(tmp_path)
        with JournalWriter(directory) as writer:
            writer.append({"event": "x", "key": "k"})
        with open(journal_path(directory), "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        assert json.loads(lines[-1]) == {"event": "x", "key": "k"}
        assert " " not in lines[-1]

    def test_missing_journal_reads_empty(self, tmp_path):
        assert read_records(str(tmp_path / "nothing")) == []


class TestTornTail:
    def test_torn_tail_is_skipped_on_replay(self, tmp_path):
        directory = str(tmp_path)
        with JournalWriter(directory) as writer:
            writer.append({"event": "a"})
            writer.append({"event": "b"})
        path = journal_path(directory)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"event": "torn", "key": "k')  # no newline, no close
        events = [r["event"] for r in _data_records(directory)]
        assert events == ["a", "b"]

    def test_writer_repairs_torn_tail_before_appending(self, tmp_path):
        directory = str(tmp_path)
        with JournalWriter(directory) as writer:
            writer.append({"event": "a"})
        path = journal_path(directory)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"event": "torn", "key')
        # A new writer must not concatenate its record with the fragment.
        with JournalWriter(directory) as writer:
            writer.append({"event": "after-tear"})
        events = [r["event"] for r in _data_records(directory)]
        assert events == ["a", "after-tear"]

    def test_replay_at_every_byte_offset_of_final_record(self, tmp_path):
        """Satellite: a crash can tear the final record at ANY byte.

        For every prefix length of the last line, replay must keep all
        earlier records, never raise, and only admit the final record
        when it is byte-complete.
        """
        directory = str(tmp_path)
        with JournalWriter(directory) as writer:
            for i in range(3):
                writer.append({"event": "done", "key": f"key-{i}",
                               "elapsed": 1.25})
        path = journal_path(directory)
        with open(path, "rb") as fh:
            intact = fh.read()
        body = intact.rstrip(b"\n")
        cut = body.rfind(b"\n")
        head, last = body[:cut + 1], body[cut + 1:]

        for offset in range(len(last) + 1):
            with open(path, "wb") as fh:
                fh.write(head + last[:offset])
            records = _data_records(directory)
            keys = [r["key"] for r in records]
            assert keys[:2] == ["key-0", "key-1"], f"offset {offset}"
            if offset == len(last):
                # Complete JSON even without the trailing newline.
                assert keys == ["key-0", "key-1", "key-2"]
            else:
                assert len(keys) == 2, (
                    f"offset {offset}: torn prefix {last[:offset]!r} "
                    f"must not parse as a record"
                )

    def test_garbage_and_non_dict_lines_are_skipped(self, tmp_path):
        directory = str(tmp_path)
        with JournalWriter(directory) as writer:
            writer.append({"event": "a"})
        with open(journal_path(directory), "a", encoding="utf-8") as fh:
            fh.write("\x00\xff garbage\n")
            fh.write('["a", "list"]\n')
            fh.write('42\n')
            fh.write('{"event": "b"}\n')
        events = [r["event"] for r in _data_records(directory)]
        assert events == ["a", "b"]


class TestFsyncKnob:
    def test_fsync_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOURNAL_FSYNC", raising=False)
        assert journal_fsync_enabled() is False

    def test_fsync_flag_routes_through_env_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOURNAL_FSYNC", "0")
        assert journal_fsync_enabled() is False
        monkeypatch.setenv("REPRO_JOURNAL_FSYNC", "1")
        assert journal_fsync_enabled() is True

    def test_appends_fsync_when_enabled(self, tmp_path, monkeypatch):
        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync",
                            lambda fd: (calls.append(fd), real_fsync(fd)))
        monkeypatch.setenv("REPRO_JOURNAL_FSYNC", "1")
        with JournalWriter(str(tmp_path)) as writer:  # header syncs too
            writer.append({"event": "a"})
            writer.append({"event": "b"})
        assert len(calls) == 3

    def test_appends_do_not_fsync_by_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_JOURNAL_FSYNC", raising=False)
        calls = []
        monkeypatch.setattr(os, "fsync", lambda fd: calls.append(fd))
        with JournalWriter(str(tmp_path)) as writer:
            writer.append({"event": "a"})
        assert calls == []


class TestLock:
    def test_lock_is_reentrant_across_contexts(self, tmp_path):
        directory = str(tmp_path)
        with lock_journal(directory):
            pass
        with lock_journal(directory):  # a released lock can be retaken
            with JournalWriter(directory) as writer:
                writer.append({"event": "locked-append"})
        assert _data_records(directory)[0]["event"] == "locked-append"

    def test_lock_released_on_error(self, tmp_path):
        directory = str(tmp_path)
        with pytest.raises(RuntimeError):
            with lock_journal(directory):
                raise RuntimeError("boom")
        with lock_journal(directory):  # not deadlocked
            pass
