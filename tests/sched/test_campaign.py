"""Campaign client operations and the fabric execution path."""

import dataclasses
import json
import os

import pytest

from repro.experiments import export
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import execute_runs, run_spec
from repro.sched import fabric
from repro.sched.campaign import (
    CampaignConfig,
    campaign_report,
    collect_results,
    report_results,
    report_rows,
    spec_from_payload,
    spec_label,
    spec_to_payload,
    submit_specs,
)
from repro.sched.state import load_state
from repro.sched.worker import Worker
from repro.verify.chaos import corrupt_cache_entry

from tests.sched.conftest import tiny_spec


def drained_campaign(tmp_path, specs, run_fn, **knobs):
    directory = str(tmp_path / "campaign")
    knobs.setdefault("backoff", 0.0)
    submit_specs(directory, specs, CampaignConfig(**knobs))
    worker = Worker(directory, run_fn=run_fn, heartbeats=False)
    worker.serve(drain=True, install_signals=False)
    return directory, worker.cache


class TestSubmission:
    def test_submit_is_idempotent_per_key(self, tmp_path, tiny_specs):
        directory = str(tmp_path)
        assert submit_specs(directory, tiny_specs) == len(tiny_specs)
        assert submit_specs(directory, tiny_specs) == 0
        assert submit_specs(directory,
                            tiny_specs + [tiny_spec(rotation=9)]) == 1
        assert len(load_state(directory).tasks) == len(tiny_specs) + 1

    def test_first_submit_persists_config(self, tmp_path, tiny_specs):
        directory = str(tmp_path)
        config = CampaignConfig(name="exp", lease_ttl=5.0, max_attempts=7,
                                poison_threshold=2, backoff=1.5)
        submit_specs(directory, tiny_specs, config)
        # A later submit with different knobs must not rewrite them.
        submit_specs(directory, [tiny_spec(rotation=9)],
                     CampaignConfig(name="other", lease_ttl=999.0))
        state = load_state(directory)
        assert CampaignConfig.from_state(state) == config

    def test_config_round_trip_through_journal(self, tmp_path, tiny_specs):
        config = CampaignConfig(name="rt", lease_ttl=3.25, max_attempts=9,
                                poison_threshold=4, backoff=0.125)
        directory = str(tmp_path)
        submit_specs(directory, tiny_specs, config)
        assert CampaignConfig.from_state(load_state(directory)) == config

    def test_spec_payload_round_trip(self, tiny_specs):
        for spec in tiny_specs:
            restored = spec_from_payload(
                json.loads(json.dumps(spec_to_payload(spec))))
            assert restored.key() == spec.key()
            assert restored.budget == spec.budget
            assert dataclasses.asdict(restored.config) == \
                dataclasses.asdict(spec.config)

    def test_spec_label_names_scheme_threads_rotation(self):
        spec = tiny_spec(rotation=2)
        label = spec_label(spec)
        assert "/T1/rot2" in label
        assert spec.config.scheme_name in label


class TestResultCollection:
    def test_collect_results_in_submit_order(self, tmp_path, tiny_specs,
                                             stub_run_fn, tiny_results):
        directory, cache = drained_campaign(tmp_path, tiny_specs,
                                            stub_run_fn)
        results = collect_results(load_state(directory), cache)
        assert [r.ipc for r in results] == \
            [tiny_results[s.key()].ipc for s in tiny_specs]

    def test_corrupt_cache_entry_is_recomputed(self, tmp_path, tiny_specs,
                                               stub_run_fn):
        directory, cache = drained_campaign(tmp_path, tiny_specs,
                                            stub_run_fn)
        corrupted = corrupt_cache_entry(cache.directory, 1)
        assert corrupted in {spec.key() for spec in tiny_specs}
        reruns = []

        def rerun(spec):
            reruns.append(spec.key())
            return stub_run_fn(spec)

        results = collect_results(load_state(directory), cache,
                                  run_fn=rerun)
        assert all(r is not None for r in results)
        assert len(reruns) == 1
        # ... and the store was healed in passing.
        assert collect_results(load_state(directory), cache,
                               rerun_missing=False).count(None) == 0

    def test_missing_entry_without_rerun_is_none(self, tmp_path, tiny_specs,
                                                 stub_run_fn):
        directory, cache = drained_campaign(tmp_path, tiny_specs,
                                            stub_run_fn)
        corrupt_cache_entry(cache.directory, 0)
        results = collect_results(load_state(directory), cache,
                                  rerun_missing=False)
        assert results.count(None) == 1


class TestReport:
    def test_report_rows_carry_no_operational_noise(self, tmp_path,
                                                    tiny_specs,
                                                    stub_run_fn):
        directory, cache = drained_campaign(tmp_path, tiny_specs,
                                            stub_run_fn)
        state = load_state(directory)
        rows = report_rows(state, collect_results(state, cache))
        for row in rows:
            assert set(row) == {"key", "label", "state", "failure_kind",
                                "result"}
            assert row["state"] == "done"
            assert row["failure_kind"] is None

    def test_report_results_inverts_rows(self, tmp_path, tiny_specs,
                                         stub_run_fn, tiny_results):
        directory, cache = drained_campaign(tmp_path, tiny_specs,
                                            stub_run_fn)
        state = load_state(directory)
        rows = report_rows(state, collect_results(state, cache))
        restored = report_results(rows)
        assert [r.ipc for r in restored] == \
            [tiny_results[s.key()].ipc for s in tiny_specs]

    def test_failed_task_reports_kind_and_null_result(self, tmp_path,
                                                      tiny_specs):
        def broken(spec):
            raise RuntimeError("nope")

        directory, cache = drained_campaign(tmp_path, tiny_specs[:1],
                                            broken, max_attempts=1)
        state = load_state(directory)
        rows = report_rows(state, collect_results(state, cache,
                                                  rerun_missing=False))
        assert rows[0]["state"] == "failed"
        assert rows[0]["failure_kind"] == "crash"
        assert rows[0]["result"] is None

    def test_fabric_document_round_trip(self, tmp_path, tiny_specs,
                                        stub_run_fn):
        directory, cache = drained_campaign(tmp_path, tiny_specs,
                                            stub_run_fn)
        document = campaign_report(directory, cache=cache)
        assert document["schema"] == export.FABRIC_SCHEMA
        assert document["counts"] == {"done": len(tiny_specs)}
        path = str(tmp_path / "report.json")
        export.write_fabric_json(path, document["name"],
                                 document["tasks"])
        loaded = export.load_fabric_json(path)
        assert export.fabric_report_bytes(loaded) == \
            export.fabric_report_bytes(document)

    def test_load_fabric_json_rejects_wrong_schema(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"schema": "repro.run",
                       "schema_version": export.SCHEMA_VERSION}, fh)
        with pytest.raises(ValueError):
            export.load_fabric_json(path)


class TestFabricExecution:
    @pytest.fixture(autouse=True)
    def reset_fabric(self):
        yield
        fabric.configure(fabric=None, fabric_dir=None)

    def test_fabric_matches_engine_results(self, tmp_path, tiny_specs,
                                           stub_run_fn, tiny_results,
                                           monkeypatch):
        monkeypatch.setattr("repro.experiments.parallel.run_spec",
                            stub_run_fn)
        directory = str(tmp_path / "fab")
        results = fabric.fabric_execute_runs(
            tiny_specs, jobs=1, use_cache=False,
            directory=directory)
        assert [r.ipc for r in results] == \
            [tiny_results[s.key()].ipc for s in tiny_specs]

    def test_fabric_serves_duplicate_specs(self, tmp_path, tiny_specs,
                                           stub_run_fn, monkeypatch):
        monkeypatch.setattr("repro.experiments.parallel.run_spec",
                            stub_run_fn)
        batch = list(tiny_specs) + [tiny_specs[0]]
        results = fabric.fabric_execute_runs(
            batch, jobs=1, use_cache=False,
            directory=str(tmp_path / "fab"))
        assert len(results) == len(batch)
        assert results[0].ipc == results[-1].ipc
        # One campaign task per distinct key, not per batch slot.
        assert len(load_state(str(tmp_path / "fab")).tasks) == \
            len(tiny_specs)

    def test_execute_runs_delegates_when_fabric_configured(
            self, tmp_path, tiny_specs, monkeypatch):
        sentinel = ["fabric-was-here"]

        def fake_fabric(specs, **kwargs):
            return sentinel

        monkeypatch.setattr(fabric, "fabric_execute_runs", fake_fabric)
        fabric.configure(fabric=True,
                         fabric_dir=str(tmp_path / "fab"))
        assert execute_runs(tiny_specs, progress=False) is sentinel

    def test_env_flag_enables_fabric(self, monkeypatch):
        monkeypatch.delenv("REPRO_FABRIC", raising=False)
        fabric.configure(fabric=None, fabric_dir=None)
        assert fabric.fabric_enabled() is False
        monkeypatch.setenv("REPRO_FABRIC", "1")
        assert fabric.fabric_enabled() is True
        fabric.configure(fabric=False)   # explicit beats environment
        assert fabric.fabric_enabled() is False

    def test_campaign_dir_is_content_addressed(self):
        fabric.configure(fabric=None, fabric_dir=None)
        keys = ["k1", "k2"]
        assert fabric.campaign_dir_for(keys) == \
            fabric.campaign_dir_for(list(reversed(keys)))
        assert fabric.campaign_dir_for(["k1"]) != \
            fabric.campaign_dir_for(keys)

    def test_resumed_campaign_skips_completed_work(self, tmp_path,
                                                   tiny_specs,
                                                   stub_run_fn):
        directory = str(tmp_path / "fab")
        calls = []

        def counting(spec):
            calls.append(spec.key())
            return stub_run_fn(spec)

        import repro.experiments.parallel as parallel_mod
        original = parallel_mod.run_spec
        parallel_mod.run_spec = counting
        try:
            first = fabric.fabric_execute_runs(
                tiny_specs, jobs=1, use_cache=False,
                directory=directory)
            second = fabric.fabric_execute_runs(
                tiny_specs, jobs=1, use_cache=False,
                directory=directory)
        finally:
            parallel_mod.run_spec = original
        assert len(calls) == len(tiny_specs)  # resume recomputed nothing
        assert [r.ipc for r in first] == [r.ipc for r in second]
