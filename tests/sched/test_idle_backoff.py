"""Worker idle polling: seeded jitter + capped exponential backoff."""

import random
import zlib

import pytest

from repro.sched.worker import (
    DEFAULT_POLL_INTERVAL,
    MAX_IDLE_BACKOFF,
    Worker,
    idle_delay,
)


class TestIdleDelay:
    def test_backoff_doubles_and_caps(self):
        rng = random.Random(0)
        # strip jitter by sampling many times and checking the band
        for scans, scale in [(1, 1), (2, 2), (3, 4), (4, 8), (5, 16),
                             (6, 16), (50, 16)]:
            assert scale <= MAX_IDLE_BACKOFF
            delay = idle_delay(0.5, scans, rng)
            assert 0.5 * scale * 0.75 <= delay <= 0.5 * scale * 1.25

    def test_zero_scans_behaves_like_base(self):
        delay = idle_delay(0.5, 0, random.Random(0))
        assert 0.5 * 0.75 <= delay <= 0.5 * 1.25

    def test_jitter_varies_between_draws(self):
        rng = random.Random(7)
        draws = {idle_delay(0.5, 1, rng) for _ in range(16)}
        assert len(draws) > 1


class TestWorkerIntegration:
    def test_jitter_is_seeded_per_worker_id(self, tmp_path):
        directory = str(tmp_path / "camp")

        def first_draws(worker_id):
            worker = Worker(directory, cache=object(),
                            worker_id=worker_id, poll_interval=0.5)
            return [worker._jitter.random() for _ in range(4)]

        # same id -> same jitter stream (reproducible chaos runs);
        # different ids -> different streams (no lockstep polling)
        assert first_draws("w0") == first_draws("w0")
        assert first_draws("w0") != first_draws("w1")
        expected = random.Random(zlib.crc32(b"w0")).random()
        assert first_draws("w0")[0] == pytest.approx(expected)

    def test_default_poll_interval(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_WORKER_POLL", raising=False)
        worker = Worker(str(tmp_path / "camp"), cache=object(),
                        worker_id="w0")
        assert worker.poll_interval == DEFAULT_POLL_INTERVAL

    def test_env_knob_clamped_to_floor(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_POLL", "0.0001")
        worker = Worker(str(tmp_path / "camp"), cache=object(),
                        worker_id="w0")
        assert worker.poll_interval == 0.05

    def test_idle_scans_reset_when_work_appears(self, tmp_path,
                                                monkeypatch,
                                                stub_run_fn):
        """An idle worker that finally claims work drops back to the
        base poll interval."""
        from repro.sched.campaign import CampaignConfig, submit_specs

        from tests.sched.conftest import tiny_spec

        directory = str(tmp_path / "camp")
        submit_specs(directory, [tiny_spec(0)],
                     CampaignConfig(name="reset"))
        worker = Worker(directory, worker_id="w0", run_fn=stub_run_fn,
                        poll_interval=0.01)
        worker._idle_scans = 9  # pretend it has been idle a long time
        assert worker.serve(drain=True, install_signals=False) == 1
        assert worker._idle_scans == 0
