"""Worker behaviour: leases, recovery, taxonomy routing, idempotence."""

import os
import signal
import time

import pytest

from repro.experiments.cache import ResultCache
from repro.multicore.driver import DriverInvariantError
from repro.sched.campaign import CampaignConfig, submit_specs
from repro.sched.journal import read_records
from repro.sched.state import DONE, FAILED, PENDING, load_state
from repro.sched.worker import Worker


class VirtualClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_campaign(tmp_path, specs, **knobs):
    directory = str(tmp_path / "campaign")
    knobs.setdefault("lease_ttl", 30.0)
    knobs.setdefault("backoff", 0.0)
    submit_specs(directory, specs, CampaignConfig(**knobs))
    return directory


def events(directory, kind):
    return [r for r in read_records(directory) if r.get("event") == kind]


class TestDrain:
    def test_single_worker_drains_campaign(self, tmp_path, tiny_specs,
                                           stub_run_fn, tiny_results):
        directory = make_campaign(tmp_path, tiny_specs)
        worker = Worker(directory, run_fn=stub_run_fn, heartbeats=False)
        served = worker.serve(drain=True, install_signals=False)
        assert served == len(tiny_specs)
        state = load_state(directory)
        assert state.all_terminal()
        assert state.counts()[DONE] == len(tiny_specs)
        for spec in tiny_specs:
            cached = worker.cache.get(spec.key())
            assert cached is not None
            assert cached.ipc == tiny_results[spec.key()].ipc

    def test_drain_is_idempotent(self, tmp_path, tiny_specs, stub_run_fn):
        directory = make_campaign(tmp_path, tiny_specs)
        calls = []

        def counting(spec):
            calls.append(spec.key())
            return stub_run_fn(spec)

        Worker(directory, run_fn=counting,
               heartbeats=False).serve(drain=True, install_signals=False)
        Worker(directory, run_fn=counting,
               heartbeats=False).serve(drain=True, install_signals=False)
        assert len(calls) == len(tiny_specs)  # second drain found no work
        assert len(events(directory, "done")) == len(tiny_specs)

    def test_two_workers_split_work_exactly(self, tmp_path, tiny_specs,
                                            stub_run_fn):
        directory = make_campaign(tmp_path, tiny_specs)
        a = Worker(directory, worker_id="wa", run_fn=stub_run_fn,
                   heartbeats=False)
        b = Worker(directory, worker_id="wb", run_fn=stub_run_fn,
                   heartbeats=False)
        while not load_state(directory).all_terminal():
            if not a.step() and not b.step():
                break
        assert a.tasks_done + b.tasks_done == len(tiny_specs)
        done = events(directory, "done")
        assert len(done) == len(tiny_specs)
        assert len({r["key"] for r in done}) == len(tiny_specs)


class TestFailureTaxonomy:
    def test_invariant_failure_is_never_retried(self, tmp_path, tiny_specs):
        directory = make_campaign(tmp_path, tiny_specs[:1], max_attempts=5)
        calls = []

        def invariant(spec):
            calls.append(spec.key())
            raise DriverInvariantError("allocation violated",
                                       details={"core": 0})

        worker = Worker(directory, run_fn=invariant, heartbeats=False)
        worker.serve(drain=True, install_signals=False)
        assert len(calls) == 1  # no retry for deterministic failures
        task = load_state(directory).iter_tasks()[0]
        assert task.status == FAILED
        assert task.failure["kind"] == "invariant"
        assert task.failure["details"]["details"] == {"core": 0}

    def test_crash_retries_then_fails_at_max_attempts(self, tmp_path,
                                                      tiny_specs):
        directory = make_campaign(tmp_path, tiny_specs[:1], max_attempts=3)
        calls = []

        def crashing(spec):
            calls.append(spec.key())
            raise RuntimeError("flaky board")

        worker = Worker(directory, run_fn=crashing, heartbeats=False)
        worker.serve(drain=True, install_signals=False)
        assert len(calls) == 3
        task = load_state(directory).iter_tasks()[0]
        assert task.status == FAILED
        assert task.failure["kind"] == "crash"
        assert task.failure["attempts"] == 3
        requeues = events(directory, "requeue")
        assert [r["reason"] for r in requeues] == ["retry:crash"] * 2

    def test_crash_then_success_recovers(self, tmp_path, tiny_specs,
                                         stub_run_fn):
        directory = make_campaign(tmp_path, tiny_specs[:1], max_attempts=3)
        attempts = []

        def flaky(spec):
            attempts.append(spec.key())
            if len(attempts) == 1:
                raise RuntimeError("transient")
            return stub_run_fn(spec)

        worker = Worker(directory, run_fn=flaky, heartbeats=False)
        worker.serve(drain=True, install_signals=False)
        assert len(attempts) == 2
        assert load_state(directory).counts()[DONE] == 1


class TestLeaseRecovery:
    def test_expired_lease_is_reclaimed_by_another_worker(
            self, tmp_path, tiny_specs, stub_run_fn):
        directory = make_campaign(tmp_path, tiny_specs[:1], lease_ttl=10.0)
        clock = VirtualClock()
        victim = Worker(directory, worker_id="victim", run_fn=stub_run_fn,
                        clock=clock, heartbeats=False)
        task = victim.claim_task()
        assert task is not None
        # victim dies silently; its lease times out
        clock.advance(11.0)
        rescuer = Worker(directory, worker_id="rescuer",
                         run_fn=stub_run_fn, clock=clock, heartbeats=False)
        assert rescuer.step() is True
        state = load_state(directory)
        assert state.iter_tasks()[0].status == DONE
        assert state.iter_tasks()[0].completed_by == "rescuer"
        assert state.iter_tasks()[0].suspects == {"victim"}

    def test_heartbeat_keeps_lease_alive_past_ttl(self, tmp_path, tiny_specs,
                                                  stub_run_fn):
        directory = make_campaign(tmp_path, tiny_specs[:1], lease_ttl=10.0)
        clock = VirtualClock()
        holder = Worker(directory, worker_id="holder", run_fn=stub_run_fn,
                        clock=clock, heartbeats=False)
        task = holder.claim_task()
        clock.advance(8.0)
        holder.send_heartbeat(task)
        clock.advance(8.0)  # 16s since claim, 8s since heartbeat
        other = Worker(directory, worker_id="other", run_fn=stub_run_fn,
                       clock=clock, heartbeats=False)
        assert other.claim_task() is None  # lease still live, nothing free
        state = load_state(directory)
        assert state.iter_tasks()[0].lease.worker == "holder"

    def test_late_finish_after_reclaim_is_absorbed(self, tmp_path,
                                                   tiny_specs, stub_run_fn):
        directory = make_campaign(tmp_path, tiny_specs[:1], lease_ttl=10.0)
        clock = VirtualClock()
        slow = Worker(directory, worker_id="slow", run_fn=stub_run_fn,
                      clock=clock, heartbeats=False)
        task = slow.claim_task()
        outcome = slow.execute(task)
        clock.advance(11.0)
        fast = Worker(directory, worker_id="fast", run_fn=stub_run_fn,
                      clock=clock, heartbeats=False)
        assert fast.step() is True          # reclaims, completes
        slow.finish_task(task, outcome)     # the zombie finishes anyway
        state = load_state(directory)
        assert state.counts()[DONE] == 1
        assert state.duplicates == 1
        assert state.iter_tasks()[0].completed_by == "fast"

    def test_heartbeat_pump_emits_renewals(self, tmp_path, tiny_specs,
                                           stub_run_fn):
        directory = make_campaign(tmp_path, tiny_specs[:1], lease_ttl=0.3)

        def slow_run(spec):
            time.sleep(0.4)
            return stub_run_fn(spec)

        worker = Worker(directory, run_fn=slow_run, heartbeats=True)
        worker.serve(drain=True, install_signals=False)
        assert load_state(directory).counts()[DONE] == 1
        assert len(events(directory, "heartbeat")) >= 1


class TestSignalsAndRelease:
    def test_interrupt_releases_task_and_propagates(self, tmp_path,
                                                    tiny_specs):
        directory = make_campaign(tmp_path, tiny_specs[:1])

        def interrupted(spec):
            raise KeyboardInterrupt

        worker = Worker(directory, run_fn=interrupted, heartbeats=False)
        with pytest.raises(KeyboardInterrupt):
            worker.step()
        task = load_state(directory).iter_tasks()[0]
        assert task.status == PENDING
        assert task.lease is None
        assert events(directory, "requeue")[0]["reason"] == "interrupted"

    def test_sigterm_sets_drain_flag(self, tmp_path, tiny_specs,
                                     stub_run_fn):
        directory = make_campaign(tmp_path, tiny_specs[:1])
        worker = Worker(directory, run_fn=stub_run_fn, heartbeats=False)
        previous = signal.getsignal(signal.SIGTERM)
        try:
            worker._install_signals()
            os.kill(os.getpid(), signal.SIGTERM)
            deadline = time.time() + 2.0
            while not worker._draining and time.time() < deadline:
                time.sleep(0.01)
            assert worker._draining is True
        finally:
            signal.signal(signal.SIGTERM, previous)

    def test_serve_restores_previous_sigterm_handler(self, tmp_path,
                                                     tiny_specs,
                                                     stub_run_fn):
        """A leaked drain handler would be inherited by every forked
        child of this process (e.g. multiprocessing pool workers),
        which then ignore the SIGTERM used to terminate them."""
        directory = make_campaign(tmp_path, tiny_specs[:1])
        sentinel = lambda *_: None  # noqa: E731 - identity is the point
        previous = signal.signal(signal.SIGTERM, sentinel)
        try:
            worker = Worker(directory, run_fn=stub_run_fn,
                            heartbeats=False)
            worker.serve(drain=True)  # install_signals=True default
            assert signal.getsignal(signal.SIGTERM) is sentinel
        finally:
            signal.signal(signal.SIGTERM, previous)

    def test_worker_lifecycle_announced(self, tmp_path, tiny_specs,
                                        stub_run_fn):
        directory = make_campaign(tmp_path, tiny_specs[:1])
        worker = Worker(directory, worker_id="w-life", run_fn=stub_run_fn,
                        heartbeats=False)
        worker.serve(drain=True, install_signals=False)
        state = load_state(directory)
        assert state.workers["w-life"] == "stopped"


class TestSharedCache:
    def test_completion_is_idempotent_across_campaigns(self, tmp_path,
                                                       tiny_specs,
                                                       stub_run_fn):
        """Two campaigns over the same specs share the content-addressed
        store; the second run's completions overwrite with identical
        bytes (puts are atomic and deterministic)."""
        shared = ResultCache(str(tmp_path / "shared"))
        for name in ("one", "two"):
            directory = str(tmp_path / name)
            submit_specs(directory, tiny_specs,
                         CampaignConfig(backoff=0.0))
            Worker(directory, cache=shared, run_fn=stub_run_fn,
                   heartbeats=False).serve(drain=True,
                                           install_signals=False)
        for spec in tiny_specs:
            assert shared.get(spec.key()) is not None
