"""Replay semantics of the scheduler state machine."""

import pytest

from repro.sched.state import (
    DONE,
    FAILED,
    LEASED,
    PENDING,
    QUARANTINED,
    CampaignState,
    plan_reclaim,
)


def replay(*records):
    state = CampaignState()
    for record in records:
        state.apply(record)
    return state


def submit(key, label=""):
    return {"event": "submit", "key": key, "label": label}


def lease(key, worker="w1", expires=100.0, attempt=1):
    return {"event": "lease", "key": key, "worker": worker,
            "expires": expires, "attempt": attempt}


class TestLifecycle:
    def test_submit_then_lease_then_done(self):
        state = replay(
            submit("a"), lease("a"),
            {"event": "done", "key": "a", "worker": "w1", "elapsed": 2.5},
        )
        task = state.tasks["a"]
        assert task.status == DONE
        assert task.completed_by == "w1"
        assert task.elapsed == 2.5
        assert task.lease is None
        assert state.all_terminal()

    def test_submit_is_idempotent(self):
        state = replay(submit("a", label="first"), submit("a", label="dupe"),
                       submit("b"))
        assert [t.key for t in state.iter_tasks()] == ["a", "b"]
        assert state.tasks["a"].label == "first"

    def test_campaign_record_sets_name_and_config(self):
        state = replay({"event": "campaign", "name": "exp1",
                        "config": {"lease_ttl": 5.0}})
        assert state.name == "exp1"
        assert state.config["lease_ttl"] == 5.0

    def test_requeue_returns_task_to_pending_with_gate(self):
        state = replay(
            submit("a"), lease("a"),
            {"event": "requeue", "key": "a", "reason": "retry:crash",
             "not_before": 42.0},
        )
        task = state.tasks["a"]
        assert task.status == PENDING
        assert task.not_before == 42.0
        assert task.lease is None

    def test_v1_terminal_without_submit_is_tracked(self):
        # PR-4 journals have done/failed records but no submit records.
        state = replay({"event": "done", "key": "orphan", "worker": "w"})
        assert state.tasks["orphan"].status == DONE

    def test_unknown_events_counted_not_fatal(self):
        state = replay({"event": "seed", "value": 7}, submit("a"))
        assert state.ignored == 1
        assert "a" in state.tasks


class TestFirstTerminalWins:
    """Satellite: duplicate terminal records keep the first, count the rest."""

    def test_done_after_done_keeps_first(self, caplog):
        with caplog.at_level("WARNING", logger="repro.sched"):
            state = replay(
                submit("a"), lease("a"),
                {"event": "done", "key": "a", "worker": "w1", "elapsed": 1.0},
                {"event": "done", "key": "a", "worker": "w2", "elapsed": 9.0},
            )
        task = state.tasks["a"]
        assert task.completed_by == "w1"
        assert task.elapsed == 1.0
        assert state.duplicates == 1
        assert task.duplicate_terminals == 1
        assert "duplicate terminal" in caplog.text

    def test_failed_after_done_is_ignored(self):
        state = replay(
            submit("a"),
            {"event": "done", "key": "a", "worker": "w1"},
            {"event": "failed", "key": "a",
             "failure": {"kind": "crash", "message": "late loser"}},
        )
        assert state.tasks["a"].status == DONE
        assert state.tasks["a"].failure is None
        assert state.duplicates == 1

    def test_done_after_failed_is_ignored(self):
        # Within ONE journal generation first-wins is absolute; retry
        # supersession happens via requeue records, not bare re-dones.
        state = replay(
            submit("a"),
            {"event": "failed", "key": "a",
             "failure": {"kind": "crash", "message": "x"}},
            {"event": "done", "key": "a", "worker": "w2"},
        )
        assert state.tasks["a"].status == FAILED
        assert state.duplicates == 1

    def test_lease_after_terminal_is_ignored(self):
        state = replay(
            submit("a"),
            {"event": "done", "key": "a", "worker": "w1"},
            lease("a", worker="w2"),
        )
        assert state.tasks["a"].status == DONE
        assert state.tasks["a"].lease is None

    def test_counts_expose_duplicates(self):
        state = replay(
            submit("a"),
            {"event": "done", "key": "a"},
            {"event": "done", "key": "a"},
        )
        assert state.counts()["duplicates"] == 1
        assert state.counts()[DONE] == 1


class TestSuspects:
    def test_lease_expired_requeue_records_suspect(self):
        state = replay(
            submit("a"), lease("a", worker="w1"),
            {"event": "requeue", "key": "a", "reason": "lease-expired",
             "worker": "w1", "not_before": 0.0},
        )
        assert state.tasks["a"].suspects == {"w1"}

    def test_retry_requeue_does_not_record_suspect(self):
        # A worker that *reported* a retryable failure is healthy; only
        # vanished workers (expired leases) are poison evidence.
        state = replay(
            submit("a"), lease("a", worker="w1"),
            {"event": "requeue", "key": "a", "reason": "retry:crash",
             "worker": "w1", "not_before": 0.0},
        )
        assert state.tasks["a"].suspects == set()

    def test_suspects_accumulate_distinct_workers(self):
        records = [submit("a")]
        for worker in ("w1", "w2", "w1"):
            records.append(lease("a", worker=worker))
            records.append({"event": "requeue", "key": "a",
                            "reason": "lease-expired", "worker": worker,
                            "not_before": 0.0})
        state = replay(*records)
        assert state.tasks["a"].suspects == {"w1", "w2"}


class TestQueries:
    def test_claimable_in_submit_order(self):
        state = replay(submit("b"), submit("a"))
        assert state.claimable(now=0.0).key == "b"

    def test_claimable_respects_backoff_gate(self):
        state = replay(
            submit("a"), lease("a"),
            {"event": "requeue", "key": "a", "reason": "retry:crash",
             "not_before": 50.0},
            submit("b"),
        )
        assert state.claimable(now=10.0).key == "b"
        done_b = {"event": "done", "key": "b"}
        state.apply(done_b)
        assert state.claimable(now=10.0) is None
        assert state.claimable(now=50.0).key == "a"

    def test_expired_leases(self):
        state = replay(submit("a"), lease("a", expires=30.0),
                       submit("b"), lease("b", expires=90.0))
        expired = state.expired_leases(now=45.0)
        assert [t.key for t in expired] == ["a"]

    def test_heartbeat_extends_lease(self):
        state = replay(
            submit("a"), lease("a", worker="w1", expires=30.0),
            {"event": "heartbeat", "key": "a", "worker": "w1",
             "expires": 80.0},
        )
        assert state.expired_leases(now=45.0) == []
        assert state.tasks["a"].lease.expires == 80.0

    def test_heartbeat_from_stale_worker_is_ignored(self):
        state = replay(
            submit("a"), lease("a", worker="w2", expires=30.0),
            {"event": "heartbeat", "key": "a", "worker": "w1",
             "expires": 999.0},
        )
        assert state.tasks["a"].lease.expires == 30.0

    def test_next_wake_picks_earliest_horizon(self):
        state = replay(
            submit("a"), lease("a", expires=40.0),
            submit("b"),
            {"event": "requeue", "key": "b", "reason": "retry:crash",
             "not_before": 25.0},
        )
        assert state.next_wake(now=10.0) == pytest.approx(15.0)

    def test_next_wake_none_when_idle(self):
        state = replay(submit("a"), {"event": "done", "key": "a"})
        assert state.next_wake(now=0.0) is None


class TestPlanReclaim:
    def _expired_task(self, attempt=1, suspects=(), worker="w1"):
        state = replay(submit("a"),
                       lease("a", worker=worker, attempt=attempt,
                             expires=10.0))
        task = state.tasks["a"]
        task.suspects.update(suspects)
        return task

    def test_requeue_with_exponential_backoff(self):
        for attempt, delay in ((1, 0.5), (2, 1.0), (3, 2.0), (4, 4.0)):
            task = self._expired_task(attempt=attempt)
            record = plan_reclaim(task, now=100.0, max_attempts=10,
                                  poison_threshold=10, backoff=0.5)
            assert record["event"] == "requeue"
            assert record["reason"] == "lease-expired"
            assert record["not_before"] == pytest.approx(100.0 + delay)

    def test_failed_lost_when_attempts_exhausted(self):
        task = self._expired_task(attempt=3)
        record = plan_reclaim(task, now=0.0, max_attempts=3,
                              poison_threshold=10, backoff=0.5)
        assert record["event"] == "failed"
        assert record["failure"]["kind"] == "lost"
        assert record["failure"]["attempts"] == 3

    def test_poison_quarantine_counts_distinct_workers(self):
        task = self._expired_task(attempt=2, suspects={"w2", "w3"},
                                  worker="w1")
        record = plan_reclaim(task, now=0.0, max_attempts=10,
                              poison_threshold=3, backoff=0.5)
        assert record["event"] == "quarantine"
        assert record["workers"] == ["w1", "w2", "w3"]

    def test_poison_beats_retry_accounting(self):
        # Even with attempts left, a worker-killer is quarantined.
        task = self._expired_task(attempt=1, suspects={"w2"}, worker="w1")
        record = plan_reclaim(task, now=0.0, max_attempts=100,
                              poison_threshold=2, backoff=0.5)
        assert record["event"] == "quarantine"

    def test_repeat_offender_worker_counts_once(self):
        task = self._expired_task(attempt=5, suspects={"w1"}, worker="w1")
        record = plan_reclaim(task, now=0.0, max_attempts=10,
                              poison_threshold=2, backoff=0.5)
        assert record["event"] == "requeue"  # one worker, not two

    def test_quarantine_replay_reports_poison_failure(self):
        state = replay(
            submit("a"), lease("a", worker="w1"),
            {"event": "quarantine", "key": "a", "reason": "poison: test",
             "workers": ["w1", "w2"]},
        )
        task = state.tasks["a"]
        assert task.status == QUARANTINED
        assert task.failure["kind"] == "poison"
        assert task.failure["details"]["suspects"] == ["w1", "w2"]
