"""Concurrent submitters: idempotent first-wins under real contention.

Two *processes* race overlapping batches into the same campaign
directory — the advisory flock serialises them, content addressing
dedups them, and the union is exactly one task per distinct spec no
matter who wins each record.  The same invariant is then pinned through
the service front with concurrent socket clients.
"""

import multiprocessing
import os

from repro.core.config import SMTConfig
from repro.experiments.parallel import RunSpec
from repro.experiments.runner import RunBudget
from repro.sched.campaign import CampaignConfig, submit_specs
from repro.sched.journal import read_records
from repro.sched.state import load_state

from tests.sched.conftest import tiny_spec

TINY = RunBudget(warmup_cycles=50, measure_cycles=200,
                 functional_warmup_instructions=1000, rotations=1)


def _make_specs(rotations):
    # reconstructed inside each child: RunSpec grids are pure data
    return [RunSpec(config=SMTConfig(n_threads=1), rotation=r,
                    budget=TINY) for r in rotations]


def _race_submit(directory, rotations, barrier, queue):
    barrier.wait()  # maximise the window: both processes hit the lock
    added = submit_specs(directory, _make_specs(rotations),
                         CampaignConfig(name="race"))
    queue.put((os.getpid(), added))


class TestConcurrentFilesystemSubmitters:
    def test_two_processes_racing_overlapping_batches(self, tmp_path):
        directory = str(tmp_path / "race")
        ctx = multiprocessing.get_context("fork") \
            if "fork" in multiprocessing.get_all_start_methods() \
            else multiprocessing.get_context()
        barrier = ctx.Barrier(2)
        queue = ctx.Queue()
        # overlapping batches: rotations {0,1} and {1,2}
        procs = [
            ctx.Process(target=_race_submit,
                        args=(directory, rotations, barrier, queue))
            for rotations in ([0, 1], [1, 2])
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        added = [queue.get(timeout=10)[1] for _ in procs]

        state = load_state(directory)
        expected = sorted(s.key() for s in _make_specs([0, 1, 2]))
        # union once each: the overlap (rotation 1) was submitted by
        # exactly one winner
        assert sorted(state.order) == expected
        assert sum(added) == 3
        # exactly one submit record per key and one campaign record —
        # the loser of each race appended nothing for the overlap
        records = list(read_records(directory))
        assert sum(r.get("event") == "campaign" for r in records) == 1
        submit_keys = [r["key"] for r in records
                       if r.get("event") == "submit"]
        assert sorted(submit_keys) == expected
        assert len(submit_keys) == len(set(submit_keys))


class TestConcurrentServiceSubmitters:
    def test_two_socket_clients_racing_the_same_batch(self, tmp_path):
        import threading

        from repro.service.client import ServiceClient
        from repro.service.server import ServerThread

        specs = [tiny_spec(rotation=r) for r in range(3)]
        sock = str(tmp_path / "race.sock")
        handle = ServerThread(str(tmp_path / "camp"), unix_path=sock,
                              use_env_token=False).start()
        try:
            results = []

            def submit():
                client = ServiceClient(sock)
                ack = client.submit(specs, CampaignConfig(name="race"))
                results.append(ack["added"])

            threads = [threading.Thread(target=submit) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert len(results) == 2
            # first wins: between them the clients added each task once
            assert sum(results) == 3
            state = load_state(handle.server.directory)
            assert sorted(state.order) == sorted(s.key() for s in specs)
        finally:
            handle.stop()

    def test_socket_and_filesystem_submitters_share_one_journal(
            self, tmp_path):
        from repro.service.client import ServiceClient
        from repro.service.server import ServerThread

        specs = [tiny_spec(rotation=r) for r in range(3)]
        directory = str(tmp_path / "camp")
        config = CampaignConfig(name="race")
        # filesystem client submits a prefix first...
        submit_specs(directory, specs[:2], config)
        sock = str(tmp_path / "mixed.sock")
        handle = ServerThread(directory, unix_path=sock,
                              use_env_token=False).start()
        try:
            # ...then a socket client submits the full batch: only the
            # genuinely new task is added
            ack = ServiceClient(sock).submit(specs, config)
            assert ack["added"] == 1
            state = load_state(directory)
            assert sorted(state.order) == sorted(s.key() for s in specs)
        finally:
            handle.stop()
