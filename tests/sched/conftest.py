"""Shared fixtures for the scheduler test suite.

Real simulations are expensive; the scheduler is not about simulation.
``tiny_results`` runs each distinct tiny spec exactly once per session
and every test's stub ``run_fn`` serves from that memo — workers and
campaigns then exercise the full journal/lease/recovery machinery with
authentic ``SimResult`` payloads at zero marginal simulation cost.
"""

import pytest

from repro.core.config import SMTConfig
from repro.experiments.parallel import RunSpec, run_spec
from repro.experiments.runner import RunBudget

TINY = RunBudget(warmup_cycles=50, measure_cycles=200,
                 functional_warmup_instructions=1000, rotations=1)


def tiny_spec(rotation: int = 0, n_threads: int = 1) -> RunSpec:
    return RunSpec(config=SMTConfig(n_threads=n_threads),
                   rotation=rotation, budget=TINY)


@pytest.fixture(scope="session")
def tiny_specs():
    return [tiny_spec(rotation=r) for r in range(3)]


@pytest.fixture(scope="session")
def tiny_results(tiny_specs):
    return {spec.key(): run_spec(spec) for spec in tiny_specs}


@pytest.fixture(scope="session")
def stub_run_fn(tiny_results):
    def run(spec):
        return tiny_results[spec.key()]

    return run
