"""Property-based tests for the cache model."""

from hypothesis import given, settings, strategies as st

from repro.memory.cache import BankedCache, CacheParams
from repro.memory.hierarchy import MemoryHierarchy


def tiny_cache(assoc=2):
    return BankedCache(CacheParams(
        name="prop", size=2048, assoc=assoc, line_size=64, banks=2,
        transfer_time=1, accesses_per_cycle=4, fill_time=1,
        latency_to_next=6, mshrs=4,
    ))


# ----------------------------------------------------------------------
# warm_touch agrees with a reference set-associative LRU model.
# ----------------------------------------------------------------------
@given(st.lists(st.integers(0, 63), min_size=1, max_size=300))
@settings(max_examples=60, deadline=None)
def test_warm_touch_matches_reference_lru(line_ids):
    cache = tiny_cache(assoc=2)
    n_sets = cache.n_sets
    reference = [list() for _ in range(n_sets)]
    for line_id in line_ids:
        addr = line_id * 64
        s = reference[line_id % n_sets]
        expected_hit = line_id in s
        if expected_hit:
            s.remove(line_id)
        elif len(s) >= 2:
            s.pop(0)
        s.append(line_id)
        assert cache.warm_touch(addr) == expected_hit


# ----------------------------------------------------------------------
# The timed lookup/fill path never hits for a line never filled, and
# always hits for a line just filled (same set pressure permitting).
# ----------------------------------------------------------------------
@given(st.lists(st.integers(0, 31), min_size=1, max_size=100))
@settings(max_examples=40, deadline=None)
def test_lookup_subset_of_filled(line_ids):
    cache = tiny_cache()
    filled = set()
    cycle = 0
    for line_id in line_ids:
        addr = line_id * 64
        hit = cache.lookup(addr, cycle)
        if hit:
            assert line_id in filled, "hit on a never-filled line"
        else:
            cache.start_fill(addr, cycle)
            filled.add(line_id)
        cycle += 3


# ----------------------------------------------------------------------
# Hierarchy accesses always complete in bounded time and never lose the
# hit-after-fill property under random interleavings.
# ----------------------------------------------------------------------
@given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 40)),
                min_size=1, max_size=60),
       st.integers(2, 9))
@settings(max_examples=30, deadline=None)
def test_hierarchy_bounded_latency(accesses, gap):
    h = MemoryHierarchy()
    cycle = 0
    for tid, line_id in accesses:
        addr = 0x1000000 + line_id * 64
        result = h.daccess(tid, addr, cycle)
        if not result.rejected:
            assert result.ready_cycle <= cycle + 3000
            assert result.ready_cycle >= cycle
        cycle += gap


@given(st.integers(0, 100), st.integers(0, 7))
@settings(max_examples=40, deadline=None)
def test_hit_after_uncontended_fill(line_id, tid):
    h = MemoryHierarchy()
    addr = 0x1000000 + line_id * 64
    first = h.daccess(tid, addr, 0)
    assert not first.l1_hit
    later = h.daccess(tid, addr, first.ready_cycle + 10)
    assert later.l1_hit
