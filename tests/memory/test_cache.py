"""Unit tests for the banked, lockup-free cache model."""

import pytest

from repro.memory.cache import BankedCache, CacheParams


def small_cache(**overrides) -> BankedCache:
    params = dict(
        name="test", size=4096, assoc=2, line_size=64, banks=4,
        transfer_time=1, accesses_per_cycle=2, fill_time=2,
        latency_to_next=6, mshrs=2,
    )
    params.update(overrides)
    return BankedCache(CacheParams(**params))


class TestGeometry:
    def test_sets(self):
        cache = small_cache()
        assert cache.n_sets == 4096 // (64 * 2)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheParams(name="bad", size=1000, assoc=3, line_size=64, banks=8)

    def test_line_and_bank_mapping(self):
        cache = small_cache()
        assert cache.line_of(0) == 0
        assert cache.line_of(64) == 1
        assert cache.bank_of(0) == 0
        assert cache.bank_of(64) == 1
        assert cache.bank_of(64 * 4) == 0  # wraps over 4 banks


class TestHitMiss:
    def test_cold_miss(self):
        cache = small_cache()
        assert not cache.lookup(0x1000, cycle=0)
        assert cache.misses == 1

    def test_hit_after_fill(self):
        cache = small_cache()
        cache.lookup(0x1000, 0)
        cache.start_fill(0x1000, 10)
        assert cache.lookup(0x1000, 20)
        assert cache.accesses == 2 and cache.misses == 1

    def test_lru_within_set(self):
        cache = small_cache()  # 2-way, 32 sets
        set_stride = 64 * cache.n_sets
        a, b, c = 0x0, set_stride, 2 * set_stride
        for addr in (a, b):
            cache.lookup(addr, 0)
            cache.start_fill(addr, 0)
        cache.lookup(a, 5)            # touch a: b becomes LRU
        cache.lookup(c, 6)
        cache.start_fill(c, 6)        # evicts b
        assert cache.lookup(a, 20)
        assert not cache.lookup(b, 21)

    def test_miss_rate(self):
        cache = small_cache()
        cache.lookup(0, 0)
        cache.start_fill(0, 0)
        cache.lookup(0, 5)
        assert cache.miss_rate == 0.5

    def test_reset_stats(self):
        cache = small_cache()
        cache.lookup(0, 0)
        cache.reset_stats()
        assert cache.accesses == 0 and cache.misses == 0


class TestBanks:
    def test_bank_busy_after_access(self):
        cache = small_cache()
        cache.lookup(0x1000, 5)
        assert not cache.bank_free_at(0x1000, 5)
        assert cache.bank_free_at(0x1000, 6)

    def test_other_bank_unaffected(self):
        cache = small_cache()
        cache.lookup(0x1000, 5)
        assert cache.bank_free_at(0x1000 + 64, 5)

    def test_fill_window_blocks_bank(self):
        cache = small_cache()
        cache.start_fill(0x1000, ready_cycle=100)
        assert cache.bank_free_at(0x1000, 99)
        assert not cache.bank_free_at(0x1000, 100)
        assert not cache.bank_free_at(0x1000, 101)
        assert cache.bank_free_at(0x1000, 102)  # fill_time = 2

    def test_fill_does_not_block_before_arrival(self):
        """The regression that once wedged the whole simulator: an
        outstanding miss must not reserve the bank for its entire
        latency, only for the fill window."""
        cache = small_cache()
        cache.start_fill(0x1000, ready_cycle=300)
        assert cache.bank_free_at(0x1000, 10)


class TestPorts:
    def test_port_limit_per_cycle(self):
        cache = small_cache(accesses_per_cycle=2)
        assert cache.port_available(7)
        cache.grant_port(7)
        cache.grant_port(7)
        assert not cache.port_available(7)
        assert cache.port_available(8)

    def test_fractional_rate(self):
        cache = small_cache(banks=1, accesses_per_cycle=0.25, size=4096,
                            assoc=1)
        assert cache.port_available(0)
        cache.grant_port(0)
        assert not cache.port_available(1)
        assert cache.port_available(4)


class TestMSHRs:
    def test_outstanding_lookup(self):
        cache = small_cache()
        cache.start_fill(0x1000, 50)
        assert cache.mshr_lookup(0x1000) == 50
        assert cache.mshr_lookup(0x2000) is None

    def test_stale_entry_retired_with_cycle(self):
        cache = small_cache()
        cache.start_fill(0x1000, 50)
        assert cache.mshr_lookup(0x1000, cycle=60) is None
        assert 0x1000 >> 6 not in cache.outstanding

    def test_mshr_full_counts_live_only(self):
        """Completed fills free their MSHR immediately (the regression
        that throttled the memory system for ~800-cycle stretches)."""
        cache = small_cache(mshrs=2)
        cache.start_fill(0x1000, 50)
        cache.start_fill(0x2000, 55)
        assert cache.mshr_full(cycle=10)
        assert not cache.mshr_full(cycle=60)

    def test_same_line_merges(self):
        cache = small_cache()
        cache.start_fill(0x1000, 50)
        assert cache.mshr_lookup(0x1008, cycle=0) == 50  # same line

    def test_expire_prunes(self):
        cache = small_cache()
        cache.start_fill(0x1000, 50)
        cache.grant_port(3)
        cache.expire(100)
        assert not cache.outstanding
        assert cache._port_grants == {}


class TestWarmTouch:
    def test_install_and_hit(self):
        cache = small_cache()
        assert not cache.warm_touch(0x1000)
        assert cache.warm_touch(0x1000)
        assert cache.probe(0x1000)

    def test_no_stats_side_effects(self):
        cache = small_cache()
        cache.warm_touch(0x1000)
        assert cache.accesses == 0 and cache.misses == 0

    def test_respects_associativity(self):
        cache = small_cache()
        set_stride = 64 * cache.n_sets
        for i in range(3):
            cache.warm_touch(i * set_stride)
        assert not cache.probe(0)  # evicted, 2-way
        assert cache.probe(set_stride)
        assert cache.probe(2 * set_stride)
