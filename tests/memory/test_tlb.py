"""Unit tests for the TLB."""

import pytest

from repro.memory.tlb import TLB


class TestTLB:
    def test_cold_miss_then_hit(self):
        tlb = TLB(entries=4)
        assert not tlb.access(0, 0x10000)
        assert tlb.access(0, 0x10000)

    def test_same_page_different_offset_hits(self):
        tlb = TLB()
        tlb.access(0, 0x10000)
        assert tlb.access(0, 0x10000 + 4096)  # same 8KB page

    def test_adjacent_pages_distinct(self):
        tlb = TLB()
        tlb.access(0, 0x10000)
        assert not tlb.access(0, 0x10000 + 8192)

    def test_thread_tagged(self):
        tlb = TLB()
        tlb.access(0, 0x10000)
        assert not tlb.access(1, 0x10000)

    def test_lru_eviction(self):
        tlb = TLB(entries=2)
        tlb.access(0, 0 * 8192)
        tlb.access(0, 1 * 8192)
        tlb.access(0, 0 * 8192)       # refresh page 0
        tlb.access(0, 2 * 8192)       # evicts page 1
        assert tlb.access(0, 0)
        assert not tlb.access(0, 1 * 8192)

    def test_miss_rate(self):
        tlb = TLB()
        tlb.access(0, 0)
        tlb.access(0, 0)
        assert tlb.miss_rate == 0.5
        tlb.reset_stats()
        assert tlb.accesses == 0

    def test_page_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            TLB(page_bytes=5000)

    def test_page_of(self):
        tlb = TLB(page_bytes=8192)
        assert tlb.page_of(8191) == 0
        assert tlb.page_of(8192) == 1
