"""Unit and integration tests for the full memory hierarchy."""

import pytest

from repro.memory.hierarchy import (
    DCACHE_PARAMS,
    ICACHE_PARAMS,
    L2_PARAMS,
    L3_PARAMS,
    MemoryHierarchy,
    default_hierarchy,
)


class TestTable2Configuration:
    """The hierarchy parameters must match Table 2 of the paper."""

    def test_l1_sizes(self):
        assert ICACHE_PARAMS.size == 32 * 1024
        assert DCACHE_PARAMS.size == 32 * 1024

    def test_l1_direct_mapped(self):
        assert ICACHE_PARAMS.assoc == 1
        assert DCACHE_PARAMS.assoc == 1

    def test_l2(self):
        assert L2_PARAMS.size == 256 * 1024
        assert L2_PARAMS.assoc == 4
        assert L2_PARAMS.latency_to_next == 12

    def test_l3(self):
        assert L3_PARAMS.size == 2 * 1024 * 1024
        assert L3_PARAMS.assoc == 1
        assert L3_PARAMS.banks == 1
        assert L3_PARAMS.transfer_time == 4
        assert L3_PARAMS.accesses_per_cycle == 0.25
        assert L3_PARAMS.fill_time == 8
        assert L3_PARAMS.latency_to_next == 62

    def test_line_sizes_64(self):
        for p in (ICACHE_PARAMS, DCACHE_PARAMS, L2_PARAMS, L3_PARAMS):
            assert p.line_size == 64

    def test_banks(self):
        assert ICACHE_PARAMS.banks == 8
        assert DCACHE_PARAMS.banks == 8
        assert L2_PARAMS.banks == 8

    def test_l1_latency_to_next_is_6(self):
        assert ICACHE_PARAMS.latency_to_next == 6


class TestAccessPath:
    def test_cold_access_goes_to_memory(self):
        h = default_hierarchy()
        result = h.daccess(0, 0x1000000, 0)
        assert not result.l1_hit
        # Full trip: at least L1->L2 (6) + L2->L3 (12) + L3->mem (62).
        assert result.ready_cycle >= 6 + 12 + 62

    def test_l1_hit_after_fill(self):
        h = default_hierarchy()
        first = h.daccess(0, 0x1000000, 0)
        second = h.daccess(0, 0x1000000, first.ready_cycle + 5)
        assert second.l1_hit

    def test_l2_hit_is_much_faster_than_memory(self):
        h = default_hierarchy()
        first = h.daccess(0, 0x1000000, 0)
        t = first.ready_cycle + 10
        # Evict from L1 (direct-mapped): same set, different line.
        conflicting = 0x1000000 + 32 * 1024
        r = h.daccess(0, conflicting, t)
        t2 = r.ready_cycle + 10
        third = h.daccess(0, 0x1000000, t2)
        assert not third.l1_hit
        assert third.ready_cycle - t2 < 30  # L2 hit, not a memory trip

    def test_mshr_merge_same_line(self):
        h = default_hierarchy()
        a = h.daccess(0, 0x1000000, 0)
        b = h.daccess(0, 0x1000008, 1)  # same line, one cycle later
        assert not b.rejected
        assert abs(b.ready_cycle - a.ready_cycle) <= 2  # merged fill

    def test_bank_conflict_rejected(self):
        h = default_hierarchy()
        addr = 0x1000000
        h.daccess(0, addr, 0)
        # Same bank, same cycle: the bank serialises.
        same_bank = addr + 64 * 8  # 8 banks -> +8 lines wraps to bank 0
        r = h.daccess(0, same_bank, 0)
        assert r.rejected

    def test_port_limit_rejected(self):
        h = default_hierarchy()
        granted = 0
        rejected = 0
        for i in range(6):
            r = h.daccess(0, 0x1000000 + 64 * i, 0)
            rejected += r.rejected
            granted += not r.rejected
        assert granted == 4  # Table 2: 4 D-cache accesses/cycle
        assert rejected == 2

    def test_ifetch_separate_from_dcache(self):
        h = default_hierarchy()
        h.ifetch(0, 0x10000, 0)
        assert h.icache.accesses == 1
        assert h.dcache.accesses == 0


class TestTLBPenalty:
    def test_tlb_miss_adds_two_memory_accesses(self):
        h = default_hierarchy()
        # Prime the cache line but force a TLB miss via a fresh thread.
        first = h.daccess(0, 0x1000000, 0)
        warm = h.daccess(0, 0x1000000, first.ready_cycle + 5)
        assert warm.l1_hit
        assert warm.ready_cycle >= first.ready_cycle + 1  # no extra penalty
        # Evict the TLB entry by filling with other pages.
        for i in range(1, 80):
            h.dtlb.access(0, 0x1000000 + i * 8192)
        t = first.ready_cycle + 500
        miss = h.daccess(0, 0x1000000, t)
        assert miss.ready_cycle - t >= 2 * h.full_memory_latency

    def test_full_memory_latency_value(self):
        h = default_hierarchy()
        assert h.full_memory_latency == 6 + 12 + 62 + 4


class TestInfiniteBandwidth:
    def test_no_rejections(self):
        h = MemoryHierarchy(infinite_bandwidth=True)
        for i in range(20):
            r = h.daccess(0, 0x1000000 + 64 * i, 0)
            assert not r.rejected

    def test_latencies_preserved(self):
        h = MemoryHierarchy(infinite_bandwidth=True)
        r = h.daccess(0, 0x1000000, 0)
        assert r.ready_cycle >= 6 + 12 + 62

    def test_hits_still_hits(self):
        h = MemoryHierarchy(infinite_bandwidth=True)
        first = h.daccess(0, 0x1000000, 0)
        again = h.daccess(0, 0x1000000, first.ready_cycle + 5)
        assert again.l1_hit


class TestProbeAndWarm:
    def test_probe_false_while_fill_outstanding(self):
        h = default_hierarchy()
        h.ifetch(0, 0x10000, 0)
        assert not h.icache_probe(0x10000)  # fill still in flight

    def test_probe_true_after_warm(self):
        h = default_hierarchy()
        h.warm_access(0, 0x10000, is_instr=True)
        assert h.icache_probe(0x10000)

    def test_warm_access_walks_levels(self):
        h = default_hierarchy()
        h.warm_access(0, 0x1000000, is_instr=False)
        assert h.dcache.probe(0x1000000)
        assert h.l3.probe(0x1000000) or h.l2.probe(0x1000000)

    def test_reset_stats_clears_all_levels(self):
        h = default_hierarchy()
        h.daccess(0, 0x1000000, 0)
        h.reset_stats()
        for cache in (h.icache, h.dcache, h.l2, h.l3):
            assert cache.accesses == 0
        assert h.dtlb.accesses == 0


class TestStability:
    def test_oversubscribed_stream_applies_back_pressure(self):
        """A miss every 2 cycles exceeds the memory system's sustainable
        bandwidth (the L3 accepts one access per 4 cycles): the MSHRs
        must fill and reject — never wedge, never accept unboundedly."""
        h = default_hierarchy()
        cycle = 0
        completed = rejected = 0
        for i in range(500):
            r = h.daccess(0, 0x1000000 + 64 * i, cycle)
            if r.rejected:
                rejected += 1
            else:
                completed += 1
                assert r.ready_cycle < cycle + 5000
            cycle += 2
        assert completed > 30       # progress continues under pressure
        assert rejected > completed  # back-pressure dominates

    def test_sustainable_stream_completes(self):
        """At a gentler rate (one miss per 16 cycles) every access is
        accepted."""
        h = default_hierarchy()
        cycle = 0
        for i in range(200):
            r = h.daccess(0, 0x1000000 + 64 * i, cycle)
            assert not r.rejected
            cycle += 16
