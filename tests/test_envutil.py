"""Uniform semantics of the ``REPRO_*`` environment knobs.

The truth table every boolean knob must obey: unset, ``""``, ``"0"``,
``"false"``, ``"no"``, ``"off"`` all behave as **unset**; ``"1"``,
``"true"``, ``"yes"`` (and any other non-false token) mean **set**.
Historically ``REPRO_NO_CACHE=0`` disabled the cache and
``REPRO_CHECK_INVARIANTS=0`` enabled checking; these tests pin the fix.
"""

import pytest

from repro.envutil import (
    BOOLEAN_KNOBS,
    env_flag,
    env_float,
    env_int,
    env_str,
)

UNSET_VALUES = ["", "0", "false", "False", "FALSE", "no", "off", " 0 "]
SET_VALUES = ["1", "true", "True", "yes", "on", "2", "anything"]


class TestEnvFlag:
    @pytest.mark.parametrize("name", BOOLEAN_KNOBS)
    @pytest.mark.parametrize("value", UNSET_VALUES)
    def test_false_tokens_behave_as_unset(self, monkeypatch, name, value):
        monkeypatch.setenv(name, value)
        assert env_flag(name) is False

    @pytest.mark.parametrize("name", BOOLEAN_KNOBS)
    @pytest.mark.parametrize("value", SET_VALUES)
    def test_truthy_tokens_set_the_flag(self, monkeypatch, name, value):
        monkeypatch.setenv(name, value)
        assert env_flag(name) is True

    @pytest.mark.parametrize("name", BOOLEAN_KNOBS)
    def test_missing_variable_is_unset(self, monkeypatch, name):
        monkeypatch.delenv(name, raising=False)
        assert env_flag(name) is False

    def test_default_applies_to_unset_and_false_tokens(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_FLAG", raising=False)
        assert env_flag("REPRO_TEST_FLAG", default=True) is True
        monkeypatch.setenv("REPRO_TEST_FLAG", "0")
        assert env_flag("REPRO_TEST_FLAG", default=True) is True
        monkeypatch.setenv("REPRO_TEST_FLAG", "1")
        assert env_flag("REPRO_TEST_FLAG", default=True) is True

    def test_explicit_environ_mapping(self):
        assert env_flag("X", environ={"X": "1"}) is True
        assert env_flag("X", environ={"X": "0"}) is False
        assert env_flag("X", environ={}) is False


class TestEnvInt:
    def test_unset_and_blank_return_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_INT", raising=False)
        assert env_int("REPRO_TEST_INT", 3) == 3
        monkeypatch.setenv("REPRO_TEST_INT", "  ")
        assert env_int("REPRO_TEST_INT", 3) == 3

    def test_parses_and_clamps(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_INT", "7")
        assert env_int("REPRO_TEST_INT", 1) == 7
        monkeypatch.setenv("REPRO_TEST_INT", "0")
        assert env_int("REPRO_TEST_INT", 1, minimum=1) == 1

    def test_invalid_value_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_INT", "fourr")
        with pytest.warns(RuntimeWarning, match="REPRO_TEST_INT.*fourr.*9"):
            assert env_int("REPRO_TEST_INT", 9) == 9


class TestEnvFloat:
    def test_unset_and_blank_return_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_FLOAT", raising=False)
        assert env_float("REPRO_TEST_FLOAT", 0.5) == 0.5
        monkeypatch.setenv("REPRO_TEST_FLOAT", "  ")
        assert env_float("REPRO_TEST_FLOAT", 0.5) == 0.5

    def test_parses_and_clamps(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLOAT", "2.5")
        assert env_float("REPRO_TEST_FLOAT", 0.5) == 2.5
        monkeypatch.setenv("REPRO_TEST_FLOAT", "0.001")
        assert env_float("REPRO_TEST_FLOAT", 0.5, minimum=0.05) == 0.05

    def test_invalid_value_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLOAT", "half")
        with pytest.warns(RuntimeWarning,
                          match="REPRO_TEST_FLOAT.*half.*0.5"):
            assert env_float("REPRO_TEST_FLOAT", 0.5) == 0.5

    def test_worker_poll_knob_routes_through(self, monkeypatch):
        from repro.sched.worker import Worker
        monkeypatch.setenv("REPRO_WORKER_POLL", "0.1")
        worker = Worker("/nonexistent-campaign", cache=object(),
                        worker_id="w0")
        assert worker.poll_interval == 0.1
        # explicit argument wins over the environment
        worker = Worker("/nonexistent-campaign", cache=object(),
                        worker_id="w0", poll_interval=1.5)
        assert worker.poll_interval == 1.5


class TestEnvStr:
    def test_unset_and_whitespace_return_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_STR", raising=False)
        assert env_str("REPRO_TEST_STR") is None
        monkeypatch.setenv("REPRO_TEST_STR", "   ")
        assert env_str("REPRO_TEST_STR", "fallback") == "fallback"

    def test_strips_surrounding_whitespace(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_STR", "  secret  ")
        assert env_str("REPRO_TEST_STR") == "secret"

    def test_serve_token_knob_routes_through(self, monkeypatch):
        from repro.service.server import default_token
        monkeypatch.delenv("REPRO_SERVE_TOKEN", raising=False)
        assert default_token() is None
        monkeypatch.setenv("REPRO_SERVE_TOKEN", "hunter2")
        assert default_token() == "hunter2"


class TestKnobsRouteThroughEnvFlag:
    """End-to-end: the acceptance-criteria knobs all treat '0' as unset."""

    def test_no_cache_zero_keeps_cache_enabled(self, monkeypatch):
        from repro.experiments.cache import cache_enabled_by_default
        monkeypatch.setenv("REPRO_NO_CACHE", "0")
        assert cache_enabled_by_default() is True
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert cache_enabled_by_default() is False

    def test_check_invariants_zero_stays_off(self, monkeypatch):
        from repro.experiments import parallel
        parallel.configure(check_invariants=None)
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "0")
        assert parallel.default_check_invariants() is False
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        assert parallel.default_check_invariants() is True

    def test_no_fast_step_zero_keeps_fast_loop(self, monkeypatch):
        from repro.core.simulator import _fast_step_disabled
        monkeypatch.setenv("REPRO_NO_FAST_STEP", "0")
        assert _fast_step_disabled() is False
        monkeypatch.setenv("REPRO_NO_FAST_STEP", "1")
        assert _fast_step_disabled() is True

    def test_no_warm_images_zero_keeps_images(self, monkeypatch):
        from repro.workloads import images
        monkeypatch.setenv("REPRO_NO_WARM_IMAGES", "0")
        assert images.images_enabled() is True
        monkeypatch.setenv("REPRO_NO_WARM_IMAGES", "1")
        assert images.images_enabled() is False

    def test_budget_env_zero_behaves_as_unset(self, monkeypatch):
        from repro.experiments.runner import RunBudget
        monkeypatch.delenv("REPRO_FULL", raising=False)
        monkeypatch.setenv("REPRO_FAST", "0")
        assert RunBudget.from_environment() == RunBudget()
        monkeypatch.setenv("REPRO_FAST", "1")
        assert RunBudget.from_environment().rotations == 1
