"""Pipeline invariant sanitizer: clean runs stay clean, injected bugs
are caught, violations are structured, and the sanitizer composes with
every other observer through the listener chains."""

import pickle

import pytest

from repro.core.config import scheme
from repro.core.histograms import MetricsCollector
from repro.core.simulator import Simulator
from repro.core.telemetry import TelemetrySampler
from repro.core.trace import PipelineTracer
from repro.core.uop import S_DONE
from repro.verify.sanitizer import InvariantViolation, PipelineSanitizer
from repro.workloads.mixes import standard_mix


def _sim(n_threads=2, rotation=0, **overrides):
    config = scheme("ICOUNT", 2, 8, n_threads=n_threads, **overrides)
    return Simulator(config, standard_mix(n_threads, rotation))


def _step(sim, cycles):
    for _ in range(cycles):
        sim.step()


class TestAttachDetach:
    def test_attach_registers_and_detach_unregisters(self):
        sim = _sim()
        sanitizer = PipelineSanitizer(sim)
        assert sim.sanitizer is sanitizer
        sanitizer.detach()
        assert sim.sanitizer is None
        assert sim.commit_listener is None
        assert sim.squash_listener is None

    def test_second_sanitizer_rejected(self):
        sim = _sim()
        PipelineSanitizer(sim)
        with pytest.raises(RuntimeError):
            PipelineSanitizer(sim)

    def test_autostart_false_defers_attach(self):
        sim = _sim()
        sanitizer = PipelineSanitizer(sim, autostart=False)
        assert sim.sanitizer is None
        sanitizer.attach()
        assert sim.sanitizer is sanitizer

    def test_bad_check_interval_rejected(self):
        with pytest.raises(ValueError):
            PipelineSanitizer(_sim(), check_interval=0)


class TestCleanRuns:
    def test_standard_run_is_clean(self):
        sim = _sim()
        sanitizer = PipelineSanitizer(sim)
        _step(sim, 1500)
        assert sanitizer.cycles_checked == 1500
        assert sanitizer.commits_checked > 1000
        assert sanitizer.squashes_checked > 0

    def test_attach_after_functional_warmup_is_clean(self):
        # The shadow oracles must sync to the warmed architectural
        # state, not the program entry point.
        sim = _sim()
        sim.functional_warmup(3000)
        sanitizer = PipelineSanitizer(sim)
        _step(sim, 400)
        assert sanitizer.commits_checked > 500

    def test_attach_mid_run_is_clean(self):
        # Lazy oracle sync must also account for in-flight uops.
        sim = _sim()
        sim.functional_warmup(3000)
        _step(sim, 250)
        sanitizer = PipelineSanitizer(sim)
        _step(sim, 400)
        assert sanitizer.commits_checked > 400

    def test_check_interval_thins_structural_sweeps(self):
        sim = _sim()
        sim.functional_warmup(3000)
        sanitizer = PipelineSanitizer(sim, check_interval=10)
        _step(sim, 200)
        assert sanitizer.cycles_checked == 20
        assert sanitizer.commits_checked > 100

    def test_check_oracle_false_skips_lockstep(self):
        sim = _sim()
        sim.functional_warmup(3000)
        sanitizer = PipelineSanitizer(sim, check_oracle=False)
        _step(sim, 300)
        assert sanitizer._oracles is None
        assert sanitizer.commits_checked > 100


class TestInjectedBugs:
    def test_iq_overflow_is_caught(self):
        # Simulate a capacity-check bug by letting the physical queue
        # admit more entries than the configured machine allows.  A
        # 4-thread ICOUNT machine saturates its 32-entry int queue, so
        # occupancy crosses the configured bound within a few hundred
        # cycles.
        sim = _sim(n_threads=4)
        PipelineSanitizer(sim)
        sim.int_queue.capacity = sim.cfg.iq_capacity + 16
        with pytest.raises(InvariantViolation) as excinfo:
            _step(sim, 2000)
        violation = excinfo.value
        assert violation.invariant == "iq-overflow"
        assert violation.details["occupancy"] > violation.details["capacity"]

    def test_icount_corruption_is_caught(self):
        sim = _sim()
        PipelineSanitizer(sim)
        _step(sim, 100)
        sim.threads[0].unissued_count += 1
        with pytest.raises(InvariantViolation) as excinfo:
            _step(sim, 5)
        assert excinfo.value.invariant == "icount-accounting"
        assert excinfo.value.tid == 0

    def test_register_leak_is_caught(self):
        sim = _sim()
        PipelineSanitizer(sim)
        _step(sim, 100)
        assert sim.renamer.int_file.free_list
        sim.renamer.int_file.free_list.pop()
        with pytest.raises(InvariantViolation) as excinfo:
            _step(sim, 5)
        assert excinfo.value.invariant == "register-conservation"
        assert excinfo.value.details["leaked"]

    def test_oracle_divergence_is_caught(self):
        # Corrupt the PC of an executed correct-path instruction: the
        # commit stream no longer matches the architectural oracle.
        sim = _sim()
        PipelineSanitizer(sim)
        victim = None
        for _ in range(600):
            sim.step()
            for thread in sim.threads:
                for uop in thread.rob:
                    if (uop.state == S_DONE and not uop.wrong_path
                            and not uop.is_control):
                        victim = uop
                        break
                if victim:
                    break
            if victim:
                break
        assert victim is not None
        victim.pc ^= 0x40
        with pytest.raises(InvariantViolation) as excinfo:
            _step(sim, 200)
        violation = excinfo.value
        assert violation.invariant == "oracle-divergence"
        assert violation.details["expected_pc"] != \
            violation.details["actual_pc"]


class TestViolationObject:
    def _violation(self):
        return InvariantViolation(
            "iq-overflow", "queue holds 40 entries", 123, tid=2,
            uop="Uop(t2 #17)", details={"occupancy": 40, "capacity": 32},
        )

    def test_dict_round_trip(self):
        violation = self._violation()
        clone = InvariantViolation.from_dict(violation.to_dict())
        assert clone.to_dict() == violation.to_dict()

    def test_pickle_round_trip(self):
        # Violations must survive multiprocessing result channels.
        violation = self._violation()
        clone = pickle.loads(pickle.dumps(violation))
        assert clone.to_dict() == violation.to_dict()

    def test_str_carries_location(self):
        text = str(self._violation())
        assert "iq-overflow" in text
        assert "cycle 123" in text
        assert "thread 2" in text


class TestObserverCoexistence:
    """The PR's listener-chain fix: sanitizer, tracer, telemetry,
    metrics, and a directly-assigned listener all observe one run."""

    def test_all_observers_see_every_commit(self):
        sim = _sim()
        sim.functional_warmup(3000)
        commits = []
        sim.commit_listener = lambda uop: commits.append(uop.pc)

        metrics = MetricsCollector(sim)
        telemetry = TelemetrySampler(sim, interval=50)
        tracer = PipelineTracer(sim, max_records=100_000)
        sanitizer = PipelineSanitizer(sim)

        _step(sim, 400)
        telemetry.finish()

        assert len(commits) > 300
        assert sanitizer.commits_checked == len(commits)
        assert sum(metrics.commits_per_thread.values()) == len(commits)
        assert sum(s.committed for s in telemetry.samples) == len(commits)
        committed_records = [r for r in tracer.records if r.commit_c >= 0]
        assert len(committed_records) == len(commits)

    def test_detach_order_is_arbitrary_and_collapses_chain(self):
        sim = _sim()

        def plain(uop):
            pass

        sim.commit_listener = plain
        metrics = MetricsCollector(sim)
        telemetry = TelemetrySampler(sim, interval=50)
        sanitizer = PipelineSanitizer(sim)
        _step(sim, 60)

        telemetry.detach()
        sanitizer.detach()
        metrics.detach()
        # Chain collapses back to the bare original listener.
        assert sim.commit_listener is plain
        _step(sim, 60)  # still runs fine

    def test_sanitizer_still_catches_bugs_with_other_observers(self):
        sim = _sim(n_threads=4)
        MetricsCollector(sim)
        TelemetrySampler(sim, interval=50)
        PipelineSanitizer(sim)
        sim.int_queue.capacity = sim.cfg.iq_capacity + 16
        with pytest.raises(InvariantViolation):
            _step(sim, 2000)
