"""The chaos suite: seeded faults, exactly-once outcomes, bit-identity.

The headline invariants (ISSUE acceptance):

* every submitted RunSpec reaches **exactly one** terminal state, no
  matter which faults fire — nothing lost, nothing double-counted;
* the final campaign report is **bit-identical** to a fault-free
  execution of the same campaign.

Faults are injected by seeded :class:`FaultPlan` s on a virtual clock,
so every failing interleaving is replayable from its seed.
"""

import pytest

from repro.experiments.parallel import run_spec
from repro.sched.state import DONE, FAILED, QUARANTINED, TERMINAL_STATES
from repro.verify.chaos import (
    FAULT_KINDS,
    Fault,
    FaultPlan,
    run_chaos_campaign,
)

from tests.sched.conftest import tiny_spec


@pytest.fixture(scope="module")
def tiny_specs():
    return [tiny_spec(rotation=r) for r in range(3)]


@pytest.fixture(scope="module")
def tiny_results(tiny_specs):
    return {spec.key(): run_spec(spec) for spec in tiny_specs}


@pytest.fixture(scope="module")
def stub_run_fn(tiny_results):
    def run(spec):
        return tiny_results[spec.key()]

    return run


def baseline(tmp_path, specs, run_fn, **kwargs):
    """The fault-free execution every chaos run must match."""
    outcome = run_chaos_campaign(
        str(tmp_path / "baseline"), specs, run_fn,
        plan=FaultPlan(seed=0), **kwargs)
    return outcome


def assert_exactly_one_terminal(outcome, specs):
    state = outcome.state
    assert sorted(state.order) == sorted({s.key() for s in specs})
    for task in state.iter_tasks():
        assert task.status in TERMINAL_STATES, \
            f"{task.key[:12]} stuck in {task.status}"
    counts = state.counts()
    assert counts["done"] + counts["failed"] + counts["quarantined"] \
        == len({s.key() for s in specs})


class TestSeededPlans:
    @pytest.mark.parametrize("seed", range(6))
    def test_report_bit_identical_under_random_faults(
            self, tmp_path, tiny_specs, stub_run_fn, seed):
        reference = baseline(tmp_path, tiny_specs, stub_run_fn)
        plan = FaultPlan.generate(seed, n_faults=8, horizon=30,
                                  n_workers=2)
        outcome = run_chaos_campaign(
            str(tmp_path / f"chaos-{seed}"), tiny_specs, stub_run_fn,
            plan=plan)
        assert_exactly_one_terminal(outcome, tiny_specs)
        assert outcome.report_bytes == reference.report_bytes, \
            f"seed {seed} diverged: {plan.to_dict()}"

    def test_chaos_run_is_replayable_from_its_seed(self, tmp_path,
                                                   tiny_specs,
                                                   stub_run_fn):
        plan = FaultPlan.generate(3, n_faults=8, horizon=30)
        first = run_chaos_campaign(str(tmp_path / "a"), tiny_specs,
                                   stub_run_fn, plan=plan)
        second = run_chaos_campaign(str(tmp_path / "b"), tiny_specs,
                                    stub_run_fn, plan=plan)
        assert first.report_bytes == second.report_bytes
        assert first.killed_workers == second.killed_workers
        assert first.ticks == second.ticks

    def test_plan_round_trips_through_json(self, tmp_path):
        plan = FaultPlan.generate(7, n_faults=5)
        path = str(tmp_path / "plan.json")
        plan.save(path)
        loaded = FaultPlan.load(path)
        assert loaded == plan
        assert all(f.kind in FAULT_KINDS for f in loaded.faults)


class TestTargetedFaults:
    def test_killed_worker_mid_lease_loses_nothing(self, tmp_path,
                                                   tiny_specs,
                                                   stub_run_fn):
        reference = baseline(tmp_path, tiny_specs, stub_run_fn)
        plan = FaultPlan(seed=0, faults=[
            Fault(kind="kill-worker", tick=1, worker=0),
            Fault(kind="kill-worker", tick=2, worker=1),
        ])
        outcome = run_chaos_campaign(
            str(tmp_path / "kills"), tiny_specs, stub_run_fn, plan=plan)
        assert len(outcome.killed_workers) == 2
        assert_exactly_one_terminal(outcome, tiny_specs)
        assert outcome.report_bytes == reference.report_bytes

    def test_stalled_worker_duplicate_finish_is_absorbed(
            self, tmp_path, tiny_specs, stub_run_fn):
        """A stall longer than the TTL forces the duplicate-terminal
        race: the lease is reclaimed, another worker completes the
        task, and the stalled worker's late ``done`` must be counted
        as a duplicate — never as a second completion."""
        reference = baseline(tmp_path, tiny_specs, stub_run_fn)
        plan = FaultPlan(seed=0, faults=[
            Fault(kind="stall-worker", tick=1, worker=0, ticks=8),
        ])
        outcome = run_chaos_campaign(
            str(tmp_path / "stall"), tiny_specs, stub_run_fn, plan=plan,
            lease_ttl=3.0, work_ticks=2)
        assert_exactly_one_terminal(outcome, tiny_specs)
        assert outcome.state.duplicates >= 1, \
            "stall never produced the late-finish race this test exists for"
        assert outcome.report_bytes == reference.report_bytes

    def test_dropped_heartbeats_only_cost_time(self, tmp_path, tiny_specs,
                                               stub_run_fn):
        reference = baseline(tmp_path, tiny_specs, stub_run_fn)
        plan = FaultPlan(seed=0, faults=[
            Fault(kind="drop-heartbeat", tick=t, worker=t % 2)
            for t in range(1, 7)
        ])
        outcome = run_chaos_campaign(
            str(tmp_path / "drops"), tiny_specs, stub_run_fn, plan=plan)
        assert_exactly_one_terminal(outcome, tiny_specs)
        assert outcome.report_bytes == reference.report_bytes

    def test_torn_journal_tail_recovers(self, tmp_path, tiny_specs,
                                        stub_run_fn):
        reference = baseline(tmp_path, tiny_specs, stub_run_fn)
        plan = FaultPlan(seed=0, faults=[
            Fault(kind="tear-journal", tick=2, fraction=0.4),
            Fault(kind="tear-journal", tick=5, fraction=0.7),
        ])
        outcome = run_chaos_campaign(
            str(tmp_path / "tears"), tiny_specs, stub_run_fn, plan=plan)
        assert outcome.torn == 2
        assert_exactly_one_terminal(outcome, tiny_specs)
        assert outcome.report_bytes == reference.report_bytes

    def test_corrupted_cache_entries_recomputed(self, tmp_path, tiny_specs,
                                                stub_run_fn):
        reference = baseline(tmp_path, tiny_specs, stub_run_fn)
        plan = FaultPlan(seed=0, faults=[
            Fault(kind="corrupt-cache", tick=6),
            Fault(kind="corrupt-cache", tick=9),
        ])
        outcome = run_chaos_campaign(
            str(tmp_path / "rot"), tiny_specs, stub_run_fn, plan=plan)
        assert_exactly_one_terminal(outcome, tiny_specs)
        assert outcome.report_bytes == reference.report_bytes

    def test_everything_at_once(self, tmp_path, tiny_specs, stub_run_fn):
        reference = baseline(tmp_path, tiny_specs, stub_run_fn)
        plan = FaultPlan(seed=0, faults=[
            Fault(kind="kill-worker", tick=1, worker=0),
            Fault(kind="stall-worker", tick=2, worker=1, ticks=6),
            Fault(kind="drop-heartbeat", tick=3, worker=1),
            Fault(kind="tear-journal", tick=4, fraction=0.3),
            Fault(kind="corrupt-cache", tick=12),
            Fault(kind="kill-worker", tick=14, worker=1),
            Fault(kind="tear-journal", tick=16, fraction=0.8),
        ])
        outcome = run_chaos_campaign(
            str(tmp_path / "all"), tiny_specs, stub_run_fn, plan=plan)
        assert_exactly_one_terminal(outcome, tiny_specs)
        assert outcome.report_bytes == reference.report_bytes


class TestDeterministicFailures:
    def test_deterministic_failure_fails_identically_under_chaos(
            self, tmp_path, tiny_specs, stub_run_fn):
        """A spec that genuinely fails must fail the same way with and
        without faults — chaos may not flip failures into successes."""
        bad_key = tiny_specs[1].key()

        def flaky_spec(spec):
            if spec.key() == bad_key:
                raise ValueError("deterministically broken workload")
            return stub_run_fn(spec)

        # max_attempts=1 keeps retries from multiplying the failure;
        # with a single attempt per task the plan must stick to faults
        # that cannot expire a lease (a kill or stall would turn a good
        # task into failed/lost — a legitimate outcome, but not this
        # test's subject).
        reference = baseline(tmp_path, tiny_specs, flaky_spec,
                             max_attempts=1)
        plan = FaultPlan.generate(
            11, n_faults=6, horizon=25,
            kinds=("drop-heartbeat", "tear-journal", "corrupt-cache"))
        outcome = run_chaos_campaign(
            str(tmp_path / "chaos"), tiny_specs, flaky_spec, plan=plan,
            max_attempts=1)
        assert_exactly_one_terminal(outcome, tiny_specs)
        states = {t.key: t.status for t in outcome.state.iter_tasks()}
        assert states[bad_key] == FAILED
        assert outcome.report_bytes == reference.report_bytes

    def test_poison_task_quarantined_never_retried_forever(
            self, tmp_path, tiny_specs, stub_run_fn):
        """Kill every worker that touches task 0: with a tight poison
        threshold it must be quarantined, the rest completed.  (No
        baseline comparison — poison is an environmental outcome.)"""
        plan = FaultPlan(seed=0, faults=[
            # Workers claim in submit order; killing slot 0 repeatedly
            # right after its claim ticks feeds the poison detector.
            Fault(kind="kill-worker", tick=1, worker=0),
            Fault(kind="kill-worker", tick=6, worker=0),
            Fault(kind="kill-worker", tick=11, worker=0),
            Fault(kind="kill-worker", tick=16, worker=0),
            Fault(kind="kill-worker", tick=21, worker=0),
            Fault(kind="kill-worker", tick=26, worker=0),
        ])
        outcome = run_chaos_campaign(
            str(tmp_path / "poison"), tiny_specs, stub_run_fn, plan=plan,
            n_workers=1, poison_threshold=2, max_attempts=50,
            lease_ttl=3.0)
        assert_exactly_one_terminal(outcome, tiny_specs)
        counts = outcome.state.counts()
        assert counts[QUARANTINED] >= 1
        quarantined = [t for t in outcome.state.iter_tasks()
                       if t.status == QUARANTINED]
        for task in quarantined:
            assert task.failure["kind"] == "poison"
            assert len(task.failure["details"]["suspects"]) >= 2

    def test_bounded_retries_exhaust_to_lost(self, tmp_path, tiny_specs,
                                             stub_run_fn):
        """With retries capped at 1 a single kill costs the task: the
        reclaim records ``failed/lost`` instead of requeueing."""
        plan = FaultPlan(seed=0, faults=[
            Fault(kind="kill-worker", tick=1, worker=0),
        ])
        outcome = run_chaos_campaign(
            str(tmp_path / "lost"), tiny_specs, stub_run_fn, plan=plan,
            n_workers=1, max_attempts=1, poison_threshold=50,
            lease_ttl=3.0)
        assert_exactly_one_terminal(outcome, tiny_specs)
        lost = [t for t in outcome.state.iter_tasks()
                if t.status == FAILED]
        assert len(lost) == 1
        assert lost[0].failure["kind"] == "lost"
        done = [t for t in outcome.state.iter_tasks()
                if t.status == DONE]
        assert len(done) == len(tiny_specs) - 1
