"""Differential fuzzer: deterministic case generation, shrinking to
minimal reproducers, corpus round trips, and campaign bookkeeping."""

import dataclasses
import json

import pytest

from repro.verify.fuzz import (
    FUZZ_CASE_SCHEMA,
    FuzzCase,
    FuzzOutcome,
    corpus_document,
    corpus_paths,
    fuzz_run,
    generate_case,
    load_corpus_case,
    run_case,
    save_corpus_case,
    shrink_case,
)


class TestCaseGeneration:
    def test_generation_is_pure(self):
        assert generate_case(7) == generate_case(7)
        assert generate_case(7) != generate_case(8)

    def test_generation_covers_the_config_space(self):
        cases = [generate_case(seed) for seed in range(40)]
        assert len({c.n_threads for c in cases}) >= 4
        assert len({c.fetch_policy for c in cases}) >= 3
        assert any(c.bigq for c in cases)
        assert any(not c.smt_pipeline for c in cases)
        assert any(c.functional_warmup for c in cases)

    def test_workloads_match_thread_count(self):
        for seed in range(20):
            case = generate_case(seed)
            assert len(case.workload_names) == case.n_threads

    def test_dict_round_trip(self):
        case = generate_case(3)
        assert FuzzCase.from_dict(case.to_dict()) == case

    def test_from_dict_rejects_unknown_fields(self):
        data = generate_case(3).to_dict()
        data["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            FuzzCase.from_dict(data)

    def test_content_hash_is_stable_identity(self):
        a, b = generate_case(5), generate_case(5)
        assert a.content_hash() == b.content_hash()
        assert len(a.content_hash()) == 12
        assert a.content_hash() != generate_case(6).content_hash()
        assert a.content_hash() != \
            dataclasses.replace(a, max_cycles=1).content_hash()

    def test_config_reflects_case_fields(self):
        case = generate_case(4)
        config = case.config()
        assert config.n_threads == case.n_threads
        assert config.fetch_policy == case.fetch_policy
        assert config.bigq == case.bigq


class TestRunCase:
    def test_small_case_runs_clean(self):
        outcome = run_case(generate_case(0, max_cycles=300))
        assert outcome.ok
        assert outcome.status == "ok"
        assert outcome.cycles_run == 300
        assert outcome.commits > 0

    def test_describe_each_status(self):
        assert "ok" in FuzzOutcome(True, "ok", 100, 50).describe()
        assert "stalled" in FuzzOutcome(False, "stalled", 100, 0).describe()
        assert "error" in FuzzOutcome(
            False, "error", 0, 0, error="ZeroDivisionError: x"
        ).describe()
        violation = {"invariant": "iq-overflow", "message": "m", "cycle": 9}
        assert "iq-overflow" in FuzzOutcome(
            False, "violation", 9, 0, violation=violation
        ).describe()


def _synthetic_runner(calls=None):
    """Fails iff (bigq and n_threads >= 2): shrinking must strip every
    other non-default knob while preserving the failure."""
    violation = {"invariant": "synthetic", "message": "boom", "cycle": 100}

    def runner(case):
        if calls is not None:
            calls.append(case)
        if case.bigq and case.n_threads >= 2:
            return FuzzOutcome(False, "violation", 100, 0,
                               violation=violation)
        return FuzzOutcome(True, "ok", case.max_cycles, 10)

    return runner


class TestShrink:
    def _fat_case(self):
        return dataclasses.replace(
            generate_case(1, max_cycles=3000),
            n_threads=6, workload_names=("alvinn",) * 6,
            bigq=True, itag=True, perfect_branch_prediction=True,
            fetch_policy="MISSCOUNT", issue_policy="BRANCH_FIRST",
            functional_warmup=5000, excess_registers=200,
        )

    def test_shrinks_to_minimal_failing_case(self):
        minimal, outcome = shrink_case(self._fat_case(),
                                       runner=_synthetic_runner())
        assert not outcome.ok
        # The failure needs exactly bigq + 2 threads; everything else
        # must have been simplified away.
        assert minimal.bigq
        assert minimal.n_threads == 2
        assert len(minimal.workload_names) == 2
        assert not minimal.itag
        assert not minimal.perfect_branch_prediction
        assert minimal.fetch_policy == "RR"
        assert minimal.issue_policy == "OLDEST"
        assert minimal.functional_warmup == 0
        assert minimal.excess_registers == 100
        # Cycle budget shrinks toward the violation cycle.
        assert minimal.max_cycles <= 101

    def test_passing_case_returned_unchanged(self):
        case = dataclasses.replace(self._fat_case(), bigq=False)
        same, outcome = shrink_case(case, runner=_synthetic_runner())
        assert outcome.ok
        assert same == case

    def test_run_budget_is_respected(self):
        calls = []
        shrink_case(self._fat_case(), runner=_synthetic_runner(calls),
                    max_runs=10)
        assert len(calls) <= 10


class TestCorpus:
    def test_save_load_round_trip(self, tmp_path):
        case = generate_case(2, max_cycles=500)
        violation = {"invariant": "iq-overflow", "message": "m",
                     "cycle": 40, "tid": 1, "uop": None, "details": {}}
        path = save_corpus_case(case, str(tmp_path), violation=violation,
                                note="shrunk from fuzz seed 2")
        assert path.endswith(f"case-{case.content_hash()}.json")
        loaded, document = load_corpus_case(path)
        assert loaded == case
        assert document["schema"] == FUZZ_CASE_SCHEMA
        assert document["found_violation"]["invariant"] == "iq-overflow"
        assert document["note"] == "shrunk from fuzz seed 2"
        assert corpus_paths(str(tmp_path)) == [path]

    def test_load_rejects_wrong_schema(self, tmp_path):
        document = corpus_document(generate_case(1))
        document["schema"] = "repro.other"
        path = tmp_path / "case-deadbeef0123.json"
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="schema"):
            load_corpus_case(str(path))

    def test_corpus_paths_empty_for_missing_directory(self, tmp_path):
        assert corpus_paths(str(tmp_path / "nope")) == []


@pytest.mark.fuzz
class TestFuzzCampaign:
    def test_small_campaign_is_clean(self, tmp_path):
        lines = []
        summary = fuzz_run(seeds=3, max_cycles=500, jobs=1,
                           corpus_dir=str(tmp_path), log=lines.append)
        assert summary.clean
        assert summary.ok == 3
        assert summary.total_cycles == 1500
        assert summary.total_commits > 0
        assert "ok" in summary.describe()
        assert len(lines) == 3
        # Clean campaigns leave no corpus entries behind.
        assert corpus_paths(str(tmp_path)) == []


@pytest.mark.fuzz
class TestFuzzResume:
    def test_journal_and_resume_skip_executed_seeds(self, tmp_path):
        from repro.experiments.supervise import JournalState

        journal = str(tmp_path / "fuzz.jsonl")
        first = fuzz_run(seeds=3, max_cycles=400, jobs=1, shrink=False,
                         journal_path=journal)
        assert first.skipped == 0
        assert set(JournalState.load(journal).seeds) == {0, 1, 2}

        lines = []
        resumed = fuzz_run(seeds=5, max_cycles=400, jobs=1, shrink=False,
                           resume_from=journal, log=lines.append)
        assert resumed.skipped == 3
        assert resumed.ok + len(resumed.failures) == 2
        assert "3 resumed-skipped" in resumed.describe()
        assert any("resuming from" in line for line in lines)
        # The journal now records all five seeds for the next resume.
        assert set(JournalState.load(journal).seeds) == {0, 1, 2, 3, 4}

    def test_supervised_timeout_not_shrunk_or_corpussed(self, tmp_path,
                                                        monkeypatch):
        import repro.verify.fuzz as fuzz_module
        from repro.core.simulator import SimulationAborted

        real = fuzz_module._run_generated

        def hang_seed_zero(args, watchdog=None):
            if args[0] == 0:  # what the in-sim watchdog raises on a hang
                raise SimulationAborted("wall-clock timeout after 30s", 512)
            return real(args, watchdog=watchdog)

        monkeypatch.setattr(fuzz_module, "_run_generated", hang_seed_zero)
        summary = fuzz_run(seeds=2, max_cycles=400, jobs=1, timeout=30,
                           corpus_dir=str(tmp_path))
        assert len(summary.failures) == 1
        failure = summary.failures[0]
        assert failure.seed == 0
        assert failure.outcome.status == "timeout"
        # Supervisor kills are environmental, not reproducers: never
        # shrunk, never written to the golden corpus.
        assert failure.corpus_path is None
        assert corpus_paths(str(tmp_path)) == []


@pytest.mark.slow
class TestFuzzSoak:
    def test_wide_campaign_is_clean(self):
        summary = fuzz_run(seeds=10, max_cycles=1500, jobs=2, shrink=False)
        assert summary.clean, summary.describe()
