"""Profile store: round-trip, validation, refs, ordering."""

import json

import pytest

from repro.perf.store import (
    PERF_SCHEMA,
    PERF_SCHEMA_VERSION,
    UNKEYED,
    ProfileStore,
    default_profile_dir,
    validate_profile,
)


class TestRoundTrip:
    def test_save_load_identity(self, tmp_path, profile_factory):
        store = ProfileStore(str(tmp_path))
        profile = profile_factory("a" * 40, 1000.0)
        path = store.save(profile)
        assert path.endswith(f"{'a' * 40}.json")
        assert store.load("a" * 40) == profile
        assert len(store) == 1
        assert ("a" * 40) in store

    def test_resave_same_sha_overwrites(self, tmp_path, profile_factory):
        store = ProfileStore(str(tmp_path))
        store.save(profile_factory("a" * 40, 1000.0))
        store.save(profile_factory("a" * 40, 2000.0,
                                   core_cycles_per_sec=11000.0))
        assert len(store) == 1
        loaded = store.load("a" * 40)
        assert loaded["metrics"]["core_cycles_per_sec"] == 11000.0

    def test_profile_without_sha_uses_unkeyed(self, tmp_path,
                                              profile_factory):
        store = ProfileStore(str(tmp_path))
        store.save(profile_factory(None, 1000.0))
        assert UNKEYED in store


class TestValidation:
    def test_rejects_wrong_schema(self, profile_factory):
        bad = profile_factory("a" * 40, 1.0)
        bad["schema"] = "repro.run"
        with pytest.raises(ValueError, match="expected schema"):
            validate_profile(bad)

    def test_rejects_wrong_version(self, profile_factory):
        bad = profile_factory("a" * 40, 1.0)
        bad["schema_version"] = PERF_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="unsupported"):
            validate_profile(bad)

    def test_rejects_non_object_and_missing_metrics(self, profile_factory):
        with pytest.raises(ValueError, match="JSON object"):
            validate_profile([1, 2, 3])
        bad = profile_factory("a" * 40, 1.0)
        del bad["metrics"]
        with pytest.raises(ValueError, match="metrics"):
            validate_profile(bad)

    def test_load_validates(self, tmp_path, profile_factory):
        store = ProfileStore(str(tmp_path))
        stale = profile_factory("b" * 40, 1.0)
        stale["schema_version"] = 999
        with open(store.path_for("b" * 40), "w") as fh:
            json.dump(stale, fh)
        with pytest.raises(ValueError):
            store.load("b" * 40)

    def test_profiles_skips_invalid_files(self, tmp_path, profile_factory):
        store = ProfileStore(str(tmp_path))
        store.save(profile_factory("a" * 40, 1.0))
        (tmp_path / "junk.json").write_text("not json")
        assert [p["git_sha"] for p in store.profiles()] == ["a" * 40]


class TestRefs:
    def test_prefix_resolution(self, tmp_path, profile_factory):
        store = ProfileStore(str(tmp_path))
        store.save(profile_factory("abcd" + "0" * 36, 1.0))
        assert store.load("abcd")["git_sha"].startswith("abcd")

    def test_ambiguous_prefix_raises(self, tmp_path, profile_factory):
        store = ProfileStore(str(tmp_path))
        store.save(profile_factory("abcd" + "0" * 36, 1.0))
        store.save(profile_factory("abcd" + "1" * 36, 2.0))
        with pytest.raises(ValueError, match="ambiguous"):
            store.load("abcd")

    def test_missing_ref_raises_keyerror(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        with pytest.raises(KeyError):
            store.load("feedface")
        with pytest.raises(KeyError, match="empty"):
            store.load("latest")


class TestOrdering:
    def test_profiles_sort_by_recorded_at(self, tmp_path, profile_factory):
        store = ProfileStore(str(tmp_path))
        for i, sha in enumerate(["c" * 40, "a" * 40, "b" * 40]):
            store.save(profile_factory(sha, 100.0 + i))
        assert [p["git_sha"][0] for p in store.profiles()] == ["c", "a", "b"]
        assert store.latest()["git_sha"] == "b" * 40

    def test_latest_ref(self, tmp_path, profile_factory):
        store = ProfileStore(str(tmp_path))
        store.save(profile_factory("a" * 40, 1.0))
        store.save(profile_factory("b" * 40, 2.0))
        assert store.load("latest")["git_sha"] == "b" * 40

    def test_history_excludes_current_and_truncates(self, tmp_path,
                                                    profile_factory):
        store = ProfileStore(str(tmp_path))
        shas = [f"{i:x}" * 40 for i in range(6)]
        for i, sha in enumerate(shas):
            store.save(profile_factory(sha, 100.0 + i))
        current = store.load(shas[-1])
        history = store.history(before=current, limit=3)
        assert [p["git_sha"] for p in history] == shas[2:5]

    def test_empty_store(self, tmp_path):
        store = ProfileStore(str(tmp_path / "missing"))
        assert store.profiles() == []
        assert store.latest() is None
        assert len(store) == 0


class TestDefaultDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_PERF_DIR", str(tmp_path))
        assert default_profile_dir() == str(tmp_path)

    def test_default_is_dot_perf(self, monkeypatch):
        monkeypatch.delenv("REPRO_PERF_DIR", raising=False)
        assert default_profile_dir().endswith(".perf")

    def test_schema_constants(self):
        assert PERF_SCHEMA == "repro.perf"
        assert isinstance(PERF_SCHEMA_VERSION, int)
