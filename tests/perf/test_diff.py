"""Noise-aware diff math."""

import pytest

from repro.perf.diff import (
    ADDED,
    HIGHER,
    IMPROVED,
    LOWER,
    REGRESSED,
    REMOVED,
    UNCHANGED,
    METRIC_SPECS,
    MetricSpec,
    classify,
    diff_profiles,
    format_deltas,
    profile_metrics,
    quick_tolerance_scale,
)


def _by_name(deltas):
    return {d.metric: d for d in deltas}


class TestClassify:
    HIGHER_SPEC = MetricSpec("m", HIGHER, 0.10)
    LOWER_SPEC = MetricSpec("m", LOWER, 0.10)

    def test_within_tolerance_is_unchanged(self):
        assert classify(self.HIGHER_SPEC, 100.0, 95.0).classification \
            == UNCHANGED
        assert classify(self.HIGHER_SPEC, 100.0, 109.0).classification \
            == UNCHANGED

    def test_higher_is_better_directions(self):
        assert classify(self.HIGHER_SPEC, 100.0, 120.0).classification \
            == IMPROVED
        assert classify(self.HIGHER_SPEC, 100.0, 80.0).classification \
            == REGRESSED

    def test_lower_is_better_inverts(self):
        assert classify(self.LOWER_SPEC, 10.0, 8.0).classification \
            == IMPROVED
        assert classify(self.LOWER_SPEC, 10.0, 12.0).classification \
            == REGRESSED

    def test_rel_change_is_signed(self):
        delta = classify(self.HIGHER_SPEC, 100.0, 80.0)
        assert delta.rel_change == pytest.approx(-0.2)
        assert delta.significant

    def test_tolerance_scale_widens_noise_band(self):
        # -15% fails at 1x but passes at 2x (tolerance 10% -> 20%).
        assert classify(self.HIGHER_SPEC, 100.0, 85.0).classification \
            == REGRESSED
        assert classify(self.HIGHER_SPEC, 100.0, 85.0,
                        tolerance_scale=2.0).classification == UNCHANGED

    def test_missing_sides(self):
        assert classify(self.HIGHER_SPEC, None, 5.0).classification == ADDED
        assert classify(self.HIGHER_SPEC, 5.0, None).classification \
            == REMOVED

    def test_zero_before(self):
        assert classify(self.HIGHER_SPEC, 0.0, 0.0).classification \
            == UNCHANGED
        assert classify(self.HIGHER_SPEC, 0.0, 5.0).classification \
            == IMPROVED


class TestDiffProfiles:
    def test_full_diff(self, profile_factory):
        a = profile_factory("a" * 40, 1.0)
        b = profile_factory("b" * 40, 2.0,
                            core_cycles_per_sec=8000.0,   # -20%: regressed
                            figure3_serial_s=8.0,          # -20%: improved
                            parallel_speedup=1.32)         # +1.5%: unchanged
        deltas = _by_name(diff_profiles(a, b))
        assert deltas["core_cycles_per_sec"].classification == REGRESSED
        assert deltas["figure3_serial_s"].classification == IMPROVED
        assert deltas["parallel_speedup"].classification == UNCHANGED

    def test_unknown_metric_defaults_to_higher_better(self, profile_factory):
        a = profile_factory("a" * 40, 1.0, brand_new_metric=100.0)
        b = profile_factory("b" * 40, 2.0, brand_new_metric=50.0)
        deltas = _by_name(diff_profiles(a, b))
        assert deltas["brand_new_metric"].classification == REGRESSED

    def test_profile_metrics_drops_non_numeric(self, profile_factory):
        profile = profile_factory("a" * 40, 1.0)
        profile["metrics"]["warm_cache_hit_rate"] = None
        profile["metrics"]["flag"] = True
        metrics = profile_metrics(profile)
        assert "warm_cache_hit_rate" not in metrics
        assert "flag" not in metrics
        assert metrics["core_cycles_per_sec"] == 10000.0

    def test_quick_scale(self, profile_factory):
        full = profile_factory("a" * 40, 1.0)
        quick = profile_factory("b" * 40, 2.0, quick=True)
        assert quick_tolerance_scale(full, full) == 1.0
        assert quick_tolerance_scale(full, quick) == 2.0

    def test_format_mentions_every_metric(self, profile_factory):
        a = profile_factory("a" * 40, 1.0)
        text = format_deltas(diff_profiles(a, a))
        for spec in METRIC_SPECS:
            assert spec.name in text
