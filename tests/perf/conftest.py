"""Shared synthetic-profile factory for the perf-store tests."""

import pytest

from repro.perf.store import PERF_SCHEMA, PERF_SCHEMA_VERSION


def make_profile(sha, recorded_at, quick=False, **metric_overrides):
    """A well-formed profile with healthy defaults; override any metric."""
    metrics = {
        "core_cycles_per_sec": 10000.0,
        "reference_cycles_per_sec": 7700.0,
        "fast_vs_reference_speedup": 1.3,
        "figure3_serial_s": 10.0,
        "figure3_jobs_s": 7.7,
        "figure3_warm_cache_s": 0.05,
        "parallel_speedup": 1.3,
        "warm_cache_speedup": 200.0,
        "warm_cache_hit_rate": 1.0,
    }
    metrics.update(metric_overrides)
    return {
        "schema": PERF_SCHEMA,
        "schema_version": PERF_SCHEMA_VERSION,
        "git_sha": sha,
        "recorded_at": float(recorded_at),
        "recorded_at_iso": "2026-08-08T00:00:00Z",
        "quick": quick,
        "host": {"python": "3.12.0", "implementation": "CPython",
                 "host_cpus": 1, "platform": "test"},
        "metrics": metrics,
        "raw": {"core": {}, "figure3": {}},
    }


@pytest.fixture
def profile_factory():
    return make_profile
