"""``repro perf`` CLI: record/list/show/diff/check wiring.

``record`` is exercised with a monkeypatched collector (the real
benchmark run is the slow-marked smoke test); everything else runs
against synthetic profiles written through the real store.  The check
tests pin the acceptance criterion: non-zero exit on an injected
regression, zero on a healthy tree.
"""

import io
import json
from contextlib import redirect_stdout

import pytest

from repro.cli import main
from repro.perf.store import ProfileStore

from tests.perf.conftest import make_profile


def run_cli(*argv):
    buf = io.StringIO()
    with redirect_stdout(buf):
        code = main(list(argv))
    return code, buf.getvalue()


@pytest.fixture
def store(tmp_path):
    return ProfileStore(str(tmp_path / "perf"))


def seed_store(store, *profiles):
    for profile in profiles:
        store.save(profile)
    return store.directory


class TestRecord:
    def test_record_saves_and_reports(self, store, tmp_path, monkeypatch):
        from repro.perf import collect

        fake = make_profile("a" * 40, 1000.0)
        # summarize()/legacy_report() read the raw sections.
        fake["raw"]["core"] = {
            "core_cycles_per_sec": 10000.0, "reps": 3, "steps": 4000,
            "reference_cycles_per_sec": 7700.0,
            "fast_vs_reference_speedup": 1.3,
        }
        fake["raw"]["figure3"] = {
            "figure3_serial_s": 10.0, "jobs": 2, "figure3_jobs_s": 7.7,
            "parallel_speedup": 1.3, "figure3_warm_cache_s": 0.05,
            "warm_cache_speedup": 200.0, "warm_cache_hit_rate": 1.0,
        }

        def fake_collect(quick=False, jobs=None, steps=None, reps=3,
                         sha=None):
            return fake

        monkeypatch.setattr(collect, "collect_profile", fake_collect)
        bench = tmp_path / "BENCH_speed.json"
        code, out = run_cli("perf", "record", "--dir", store.directory,
                            "--bench-json", str(bench))
        assert code == 0
        assert ("a" * 40) in store
        assert store.load("latest") == fake
        assert f"sha {'a' * 12}" in out
        legacy = json.loads(bench.read_text())
        assert legacy["metadata"]["git_sha"] == "a" * 40
        assert "figure3" in legacy


class TestListShow:
    def test_list_empty_store(self, store):
        code, out = run_cli("perf", "list", "--dir", store.directory)
        assert code == 0
        assert "no profiles" in out

    def test_list_rows(self, store):
        seed_store(store,
                   make_profile("a" * 40, 1.0),
                   make_profile("b" * 40, 2.0, quick=True))
        code, out = run_cli("perf", "list", "--dir", store.directory)
        assert code == 0
        lines = out.strip().splitlines()
        assert len(lines) == 2
        assert "a" * 12 in lines[0] and "b" * 12 in lines[1]
        assert "quick" in lines[1]

    def test_show_latest_and_json(self, store):
        seed_store(store, make_profile("a" * 40, 1.0))
        code, out = run_cli("perf", "show", "--dir", store.directory)
        assert code == 0
        assert "core_cycles_per_sec" in out
        code, out = run_cli("perf", "show", "--json",
                            "--dir", store.directory)
        assert code == 0
        assert json.loads(out)["git_sha"] == "a" * 40

    def test_show_missing_ref_fails(self, store, capsys):
        code, _ = run_cli("perf", "show", "feedface",
                          "--dir", store.directory)
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestDiff:
    def test_diff_healthy_exits_zero(self, store):
        seed_store(store,
                   make_profile("a" * 40, 1.0),
                   make_profile("b" * 40, 2.0))
        code, out = run_cli("perf", "diff", "a" * 40, "b" * 40,
                            "--dir", store.directory)
        assert code == 0
        assert f"{'a' * 12} -> {'b' * 12}" in out

    def test_diff_regression_exits_nonzero(self, store):
        seed_store(store,
                   make_profile("a" * 40, 1.0),
                   make_profile("b" * 40, 2.0,
                                core_cycles_per_sec=6000.0))
        code, out = run_cli("perf", "diff", "a" * 40, "b" * 40,
                            "--dir", store.directory)
        assert code == 1
        assert "regressed" in out


class TestCheck:
    def test_healthy_tree_exits_zero(self, store):
        # The CI shape: one fresh profile, no history -> floors only.
        seed_store(store, make_profile("a" * 40, 1.0))
        code, out = run_cli("perf", "check", "--dir", store.directory)
        assert code == 0
        assert "verdict: OK" in out

    def test_injected_regression_exits_nonzero(self, store):
        history = [make_profile(f"{i:x}" * 40, float(i)) for i in range(5)]
        bad = make_profile("f" * 40, 99.0,
                           core_cycles_per_sec=6000.0)  # -40% step
        seed_store(store, *history, bad)
        code, out = run_cli("perf", "check", "--dir", store.directory)
        assert code == 1
        assert "verdict: FAIL" in out
        assert "core_cycles_per_sec" in out

    def test_floor_violation_fails_without_history(self, store):
        seed_store(store, make_profile("a" * 40, 1.0,
                                       parallel_speedup=0.8))
        code, out = run_cli("perf", "check", "--dir", store.directory)
        assert code == 1
        assert "floor" in out

    def test_baseline_mode(self, store):
        seed_store(store,
                   make_profile("a" * 40, 1.0),
                   make_profile("b" * 40, 2.0,
                                core_cycles_per_sec=6000.0))
        code, out = run_cli("perf", "check", "b" * 40,
                            "--baseline", "a" * 40,
                            "--dir", store.directory)
        assert code == 1
        assert "baseline" in out
        code, _ = run_cli("perf", "check", "a" * 40,
                          "--baseline", "a" * 40,
                          "--dir", store.directory)
        assert code == 0

    def test_quick_flag_relaxes_tolerances(self, store):
        # -15% movement: a regression at 1x tolerance, noise at 2x.
        seed_store(store,
                   make_profile("a" * 40, 1.0),
                   make_profile("b" * 40, 2.0,
                                core_cycles_per_sec=8500.0))
        args = ["perf", "check", "b" * 40, "--baseline", "a" * 40,
                "--dir", store.directory]
        assert run_cli(*args)[0] == 1
        assert run_cli(*args, "--quick")[0] == 0

    def test_quick_profile_implies_relaxed_tolerances(self, store):
        seed_store(store,
                   make_profile("a" * 40, 1.0),
                   make_profile("b" * 40, 2.0, quick=True,
                                core_cycles_per_sec=8500.0))
        code, _ = run_cli("perf", "check", "b" * 40,
                          "--baseline", "a" * 40,
                          "--dir", store.directory)
        assert code == 0

    def test_window_flag_limits_history(self, store):
        ancient = [make_profile(f"{i:x}" * 40, float(i),
                                core_cycles_per_sec=20000.0)
                   for i in range(2)]
        recent = [make_profile(f"{i:x}" * 40, float(i))
                  for i in range(2, 6)]
        seed_store(store, *ancient, *recent)
        assert run_cli("perf", "check", "--window", "3",
                       "--dir", store.directory)[0] == 0
        assert run_cli("perf", "check", "--window", "6",
                       "--dir", store.directory)[0] == 1

    def test_empty_store_check_fails_cleanly(self, store, capsys):
        code, _ = run_cli("perf", "check", "--dir", store.directory)
        assert code == 1
        assert "empty" in capsys.readouterr().err
