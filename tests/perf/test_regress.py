"""Regression detection on synthetic histories.

Three shapes the checker has to get right: an *improving* history must
pass, an injected step or slow-leak *degradation* must fail, and a
*noisy but flat* history must not flap.
"""

import pytest

from repro.perf.regress import (
    FLOORS,
    SLOPE_MIN_POINTS,
    check_against_baseline,
    check_against_history,
    floor_verdicts,
)


def _failing_metrics(report):
    return {v.metric for v in report.failures}


def _history(profile_factory, values, metric="core_cycles_per_sec"):
    return [
        profile_factory(f"{i:x}" * 40, float(i), **{metric: v})
        for i, v in enumerate(values)
    ]


class TestBaseline:
    def test_healthy_vs_itself_passes(self, profile_factory):
        p = profile_factory("a" * 40, 10.0)
        report = check_against_baseline(p, p)
        assert report.ok
        assert report.mode == "baseline"

    def test_injected_regression_fails(self, profile_factory):
        baseline = profile_factory("a" * 40, 1.0)
        bad = profile_factory("b" * 40, 2.0,
                              core_cycles_per_sec=7000.0)  # -30%
        report = check_against_baseline(bad, baseline)
        assert not report.ok
        assert "core_cycles_per_sec" in _failing_metrics(report)

    def test_improvement_passes(self, profile_factory):
        baseline = profile_factory("a" * 40, 1.0)
        good = profile_factory("b" * 40, 2.0,
                               core_cycles_per_sec=13000.0,
                               figure3_serial_s=7.0)
        assert check_against_baseline(good, baseline).ok

    def test_tolerance_scale_absorbs_quick_noise(self, profile_factory):
        baseline = profile_factory("a" * 40, 1.0)
        wobble = profile_factory("b" * 40, 2.0,
                                 core_cycles_per_sec=8500.0)  # -15%
        assert not check_against_baseline(wobble, baseline).ok
        assert check_against_baseline(wobble, baseline,
                                      tolerance_scale=2.0).ok


class TestTrend:
    def test_flat_history_passes(self, profile_factory):
        history = _history(profile_factory, [10000.0] * 5)
        current = profile_factory("f" * 40, 99.0)
        report = check_against_history(current, history)
        assert report.ok
        assert report.mode == "trend"

    def test_step_regression_fails_median_test(self, profile_factory):
        history = _history(profile_factory, [10000.0] * 5)
        bad = profile_factory("f" * 40, 99.0,
                              core_cycles_per_sec=7000.0)  # -30% step
        report = check_against_history(bad, history)
        assert not report.ok
        kinds = {v.kind for v in report.failures
                 if v.metric == "core_cycles_per_sec"}
        assert "median" in kinds

    def test_slow_leak_fails_slope_test(self, profile_factory):
        # 3%/sample decay: each pairwise diff is inside the 10% noise
        # band, and the current value is within tolerance of the
        # median, but the fitted slope exceeds SLOPE_THRESHOLD.
        values = [10000.0 * (1 - 0.03 * i) for i in range(5)]
        history = _history(profile_factory, values)
        current = profile_factory("f" * 40, 99.0,
                                  core_cycles_per_sec=10000.0 * (1 - 0.15))
        report = check_against_history(current, history)
        failures = [v for v in report.failures
                    if v.metric == "core_cycles_per_sec"]
        assert failures
        assert all(v.kind == "slope" for v in failures)

    def test_improving_history_passes(self, profile_factory):
        values = [10000.0 * (1 + 0.05 * i) for i in range(5)]
        history = _history(profile_factory, values)
        current = profile_factory("f" * 40, 99.0,
                                  core_cycles_per_sec=13000.0)
        assert check_against_history(current, history).ok

    def test_noisy_flat_history_passes(self, profile_factory):
        # +/-4% wobble around 10000 with a flat centre: no verdict
        # should fire in either direction.
        values = [10000.0, 9600.0, 10400.0, 9700.0, 10300.0]
        history = _history(profile_factory, values)
        current = profile_factory("f" * 40, 99.0,
                                  core_cycles_per_sec=9800.0)
        assert check_against_history(current, history).ok

    def test_lower_is_better_metric_direction(self, profile_factory):
        history = _history(profile_factory, [10.0] * 5,
                           metric="figure3_serial_s")
        slower = profile_factory("f" * 40, 99.0, figure3_serial_s=13.0)
        report = check_against_history(slower, history)
        assert "figure3_serial_s" in _failing_metrics(report)
        faster = profile_factory("e" * 40, 98.0, figure3_serial_s=8.0)
        assert check_against_history(faster, history).ok

    def test_window_limits_lookback(self, profile_factory):
        # Ancient fast samples outside the window must not pull the
        # fitted slope down and fail a steady-state current value.
        values = [20000.0, 20000.0, 10000.0, 10000.0, 10000.0]
        history = _history(profile_factory, values)
        current = profile_factory("f" * 40, 99.0)
        assert check_against_history(current, history, window=3).ok
        assert not check_against_history(current, history, window=5).ok

    def test_empty_history_floor_checks_only(self, profile_factory):
        current = profile_factory("f" * 40, 99.0)
        report = check_against_history(current, [])
        assert report.ok
        assert any("no history" in note for note in report.notes)
        assert {v.kind for v in report.verdicts} == {"floor"}

    def test_slope_needs_min_points(self, profile_factory):
        # 2 history points + current = 3 < SLOPE_MIN_POINTS: no slope
        # verdict even on a steep decline that stays within tolerance.
        assert SLOPE_MIN_POINTS == 4
        history = _history(profile_factory, [10000.0, 9500.0])
        current = profile_factory("f" * 40, 99.0,
                                  core_cycles_per_sec=9100.0)
        report = check_against_history(current, history)
        kinds = {v.kind for v in report.verdicts
                 if v.metric == "core_cycles_per_sec"}
        assert "slope" not in kinds


class TestFloors:
    def test_parallel_speedup_floor(self, profile_factory):
        assert FLOORS["parallel_speedup"] == 1.0
        bad = profile_factory("a" * 40, 1.0, parallel_speedup=0.9)
        verdicts = floor_verdicts(bad)
        assert any(v.metric == "parallel_speedup" and not v.ok
                   for v in verdicts)
        good = profile_factory("b" * 40, 2.0, parallel_speedup=1.0)
        assert all(v.ok for v in floor_verdicts(good))

    def test_floor_applies_in_both_modes(self, profile_factory):
        bad = profile_factory("a" * 40, 1.0, parallel_speedup=0.8)
        assert not check_against_baseline(bad, bad).ok
        assert not check_against_history(bad, []).ok

    def test_missing_floor_metric_is_skipped(self, profile_factory):
        p = profile_factory("a" * 40, 1.0)
        del p["metrics"]["parallel_speedup"]
        assert floor_verdicts(p) == []


class TestReport:
    def test_describe_states_verdict(self, profile_factory):
        good = profile_factory("a" * 40, 1.0)
        assert check_against_history(good, []).describe() \
            .endswith("verdict: OK")
        bad = profile_factory("b" * 40, 2.0, parallel_speedup=0.5)
        text = check_against_history(bad, []).describe()
        assert "FAIL (1 regression(s))" in text

    def test_failures_lists_only_failed(self, profile_factory):
        bad = profile_factory("b" * 40, 2.0, parallel_speedup=0.5)
        report = check_against_history(bad, [])
        assert [v.metric for v in report.failures] == ["parallel_speedup"]
