"""Replay every committed fuzz-corpus case under the sanitizer.

The corpus pins configurations that once broke the pipeline (shrunk
reproducers) plus hand-picked seed cases; each must run its full cycle
budget with every structural invariant intact and every committed PC
matching the architectural oracle.
"""

import os

import pytest

from repro.verify.fuzz import corpus_paths, load_corpus_case, run_case

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CASES = corpus_paths(CORPUS_DIR)


def test_corpus_is_not_empty():
    assert len(CASES) >= 4, "seed corpus entries are missing"


@pytest.mark.parametrize(
    "path", CASES, ids=[os.path.basename(p) for p in CASES]
)
def test_corpus_case_replays_clean(path):
    case, document = load_corpus_case(path)
    outcome = run_case(case)
    note = document.get("note", "")
    assert outcome.ok, (
        f"{os.path.basename(path)} ({note}) regressed: "
        f"{outcome.describe()}"
    )
    assert outcome.commits > 0
