"""Bit-determinism of the multicore layer.

Two identical runs must produce identical job-completion orders and
identical export documents; the allocation study must produce the same
documents under ``--jobs 2`` and ``--jobs 1`` (the pool maps in spec
order); and the document cache must key allocator spec and arrival
seed apart.
"""

import copy
import json

import pytest

from repro.core.config import SMTConfig
from repro.experiments import export
from repro.experiments.allocation import allocation_study
from repro.experiments.cache import DocumentCache, multicore_key
from repro.experiments.runner import RunBudget
from repro.multicore.driver import (
    ArrivalConfig,
    MulticoreResult,
    MulticoreRunSpec,
    OpenSystemDriver,
    generate_arrivals,
    run_open_system,
)

BUDGET = RunBudget(warmup_cycles=500, measure_cycles=4000,
                   functional_warmup_instructions=10000, rotations=1)


def tiny_spec(allocator="PAIRING", seed=3, **overrides):
    fields = dict(
        n_cores=2, allocator=allocator,
        config=SMTConfig(n_threads=2),
        quantum=150, max_cycles=20_000, seed=seed,
        arrival=ArrivalConfig(jobs=5, rate_per_kcycle=2.0,
                              service_instructions=250, seed=seed),
    )
    fields.update(overrides)
    return MulticoreRunSpec(**fields)


def test_arrivals_are_pure_functions_of_config():
    config = ArrivalConfig(jobs=12, rate_per_kcycle=1.5,
                           service_instructions=300, seed=11)
    assert generate_arrivals(config) == generate_arrivals(config)
    other = ArrivalConfig(jobs=12, rate_per_kcycle=1.5,
                          service_instructions=300, seed=12)
    assert generate_arrivals(config) != generate_arrivals(other)


@pytest.mark.parametrize("allocator",
                         ["RANDOM", "ROUND_ROBIN", "LOAD", "PAIRING"])
def test_identical_runs_identical_completion_order_and_document(allocator):
    spec = tiny_spec(allocator=allocator)
    first = OpenSystemDriver(spec).run()
    second = OpenSystemDriver(spec).run()
    assert first.completion_order == second.completion_order
    doc_a = export.multicore_document(first, spec=spec)
    doc_b = export.multicore_document(second, spec=spec)
    assert json.dumps(doc_a, sort_keys=True) \
        == json.dumps(doc_b, sort_keys=True)


def test_result_round_trips_through_dict():
    result = OpenSystemDriver(tiny_spec()).run()
    clone = MulticoreResult.from_dict(
        json.loads(json.dumps(result.to_dict()))
    )
    assert clone.to_dict() == result.to_dict()
    assert clone.latency() == result.latency()


def test_allocation_study_identical_under_jobs_1_and_2():
    """The study fans out over a pool; worker count must not leak into
    the results (map preserves spec order, runs are deterministic)."""
    kwargs = dict(
        budget=BUDGET,
        allocators=("ROUND_ROBIN", "PAIRING"),
        core_counts=(1, 2),
        loads=(("moderate", 2.0),),
        use_cache=False,
    )
    serial = allocation_study(jobs=1, **kwargs)
    parallel = allocation_study(jobs=2, **kwargs)
    assert json.dumps(serial, sort_keys=True) \
        == json.dumps(parallel, sort_keys=True)
    document_a = export.multicore_experiment_document("allocation", serial)
    document_b = export.multicore_experiment_document("allocation", parallel)
    assert document_a == document_b


# ----------------------------------------------------------------------
# Cache keys: allocator spec and arrival seed are load-bearing.
# ----------------------------------------------------------------------
def test_cache_keys_distinct_per_allocator_and_arrival_seed():
    base = tiny_spec(allocator="LOAD", seed=1)
    keys = {
        multicore_key(base),
        multicore_key(tiny_spec(allocator="ROUND_ROBIN", seed=1)),
        multicore_key(tiny_spec(allocator="PAIRING", seed=1)),
        multicore_key(tiny_spec(allocator="PAIRING:miss_weight=2.0",
                                seed=1)),
        multicore_key(tiny_spec(allocator="LOAD", seed=2)),
    }
    assert len(keys) == 5
    # Same inputs -> same key.
    assert multicore_key(base) == multicore_key(copy.deepcopy(base))


def test_run_open_system_cache_round_trip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    spec = tiny_spec()
    first = run_open_system(spec, use_cache=True)
    cache = DocumentCache()
    assert cache.get(multicore_key(spec)) is not None
    second = run_open_system(spec, use_cache=True)
    assert second.to_dict() == first.to_dict()
    # A different allocator misses and recomputes.
    other = run_open_system(tiny_spec(allocator="RANDOM"), use_cache=True)
    assert other.allocator == "RANDOM"
