"""The multicore sanitizer/fuzz surface.

* every core runs under :class:`PipelineSanitizer` in multicore mode
  (``check_invariants=True`` attaches one per rebuild, and a corrupted
  pipeline is actually caught);
* the ``repro fuzz --multicore`` config space covers core counts and
  allocator specs, and cases are pure functions of their seed;
* injected driver bugs — a double-allocated job and a job lost on a
  core drain — are caught by the driver's invariant checker, proving
  the checks are live, not decorative.
"""

import pytest

from repro.core.config import SMTConfig
from repro.multicore.driver import (
    DONE,
    RUNNING,
    ArrivalConfig,
    DriverInvariantError,
    MulticoreRunSpec,
    OpenSystemDriver,
)
from repro.verify import fuzz
from repro.verify.sanitizer import PipelineSanitizer


def tiny_spec(**overrides):
    fields = dict(
        n_cores=2, allocator="ROUND_ROBIN",
        config=SMTConfig(n_threads=2),
        quantum=150, max_cycles=15_000, seed=5,
        arrival=ArrivalConfig(jobs=4, rate_per_kcycle=2.0,
                              service_instructions=200, seed=5),
    )
    fields.update(overrides)
    return MulticoreRunSpec(**fields)


def run_until_allocated(driver, want=2):
    while sum(len(c.resident) for c in driver.cores) < want:
        assert driver.clock < driver.spec.max_cycles, "never allocated"
        driver.tick()
    return driver


# ----------------------------------------------------------------------
# Sanitizer on every core.
# ----------------------------------------------------------------------
def test_check_invariants_attaches_sanitizer_to_every_core():
    driver = OpenSystemDriver(tiny_spec(check_invariants=True))
    run_until_allocated(driver, want=2)
    occupied = [core for core in driver.cores if core.sim is not None]
    assert occupied
    for core in occupied:
        assert isinstance(core.sim.sanitizer, PipelineSanitizer)
        # The sanitizer forces the reference step path.
        assert core.sim.telemetry is None
        assert core.sim.sanitizer.cycles_checked > 0


def test_sanitizer_catches_corrupted_core_pipeline():
    """Corrupt one core's pipeline mid-run: the per-core sanitizer must
    raise, and the driver must not swallow it."""
    from repro.verify.sanitizer import InvariantViolation

    driver = OpenSystemDriver(tiny_spec(check_invariants=True))
    run_until_allocated(driver, want=1)
    victim = next(c for c in driver.cores if c.sim is not None)
    # A queue entry whose tid points past the thread list is structural
    # corruption the sweep must flag.
    entry = None
    for _ in range(200):
        entries = victim.sim.int_queue.entries
        if entries:
            entry = entries[0]
            break
        driver._step_cores()
    assert entry is not None, "queue never populated"
    entry.tid = 7
    with pytest.raises((InvariantViolation, IndexError, KeyError)):
        for _ in range(50):
            driver.tick()


def test_multicore_run_without_sanitizer_uses_fast_step():
    driver = OpenSystemDriver(tiny_spec(check_invariants=False))
    run_until_allocated(driver, want=1)
    core = next(c for c in driver.cores if c.sim is not None)
    assert core.sim.sanitizer is None
    assert core.sim.use_fast_step


# ----------------------------------------------------------------------
# Fuzz config space.
# ----------------------------------------------------------------------
def test_multicore_fuzz_cases_are_pure_functions_of_seed():
    for seed in range(30):
        assert fuzz.generate_multicore_case(seed) \
            == fuzz.generate_multicore_case(seed)


def test_multicore_fuzz_space_covers_cores_and_allocators():
    cases = [fuzz.generate_multicore_case(seed) for seed in range(120)]
    assert {case.n_cores for case in cases} >= {1, 2, 3}
    names = {case.allocator.split(":")[0] for case in cases}
    assert names >= {"RANDOM", "ROUND_ROBIN", "LOAD", "PAIRING"}
    assert any(":" in case.allocator for case in cases), \
        "parameterised allocator specs never drawn"
    specs = [case.run_spec() for case in cases[:10]]
    assert all(spec.check_invariants for spec in specs)


@pytest.mark.fuzz
def test_multicore_fuzz_smoke_is_clean():
    summary = fuzz.multicore_fuzz_run(seeds=5, max_cycles=4000)
    assert summary.clean, [f.outcome.describe() for f in summary.failures]
    assert summary.ok == 5
    assert summary.total_commits > 0


# ----------------------------------------------------------------------
# Injected driver bugs: the invariant checks must catch them.
# ----------------------------------------------------------------------
def test_injected_double_allocation_is_caught():
    driver = OpenSystemDriver(tiny_spec())
    run_until_allocated(driver, want=1)
    victim = next(
        job for core in driver.cores for job in core.resident
    )
    other = driver.cores[(victim.core + 1) % len(driver.cores)]
    other.resident.append(victim)     # the bug: resident on two cores
    with pytest.raises(DriverInvariantError, match="double allocation"):
        driver.check_invariants()


def test_injected_lost_job_on_core_drain_is_caught():
    """Drain a core without retiring its jobs: each one is RUNNING but
    resident nowhere — the conservation check must flag it."""
    driver = OpenSystemDriver(tiny_spec())
    run_until_allocated(driver, want=1)
    core = next(c for c in driver.cores if c.resident)
    lost = core.resident[0]
    core.resident.clear()             # the bug: drain without retire
    core.sim = None
    assert lost.state == RUNNING
    with pytest.raises(DriverInvariantError,
                       match="conservation|lost"):
        driver.check_invariants()


def test_injected_overfilled_core_is_caught():
    driver = OpenSystemDriver(tiny_spec())
    run_until_allocated(driver, want=2)
    core = max(driver.cores, key=lambda c: len(c.resident))
    donor = next(
        job for c in driver.cores for job in c.resident
    )
    while len(core.resident) <= core.capacity:
        core.resident.append(donor)
    with pytest.raises(DriverInvariantError, match="capacity"):
        driver.check_invariants()


def test_injected_time_travel_is_caught():
    driver = OpenSystemDriver(tiny_spec())
    driver.run()
    finished = next(j for j in driver.jobs if j.state == DONE)
    finished.finish_cycle = finished.start_cycle - 1
    with pytest.raises(DriverInvariantError, match="timeline"):
        driver.check_invariants()


def test_clean_run_passes_every_invariant():
    driver = OpenSystemDriver(tiny_spec())
    result = driver.run()
    driver.check_invariants()         # terminal state is consistent too
    assert result.jobs_completed == result.jobs_total
