"""Property tests of the allocation layer (hypothesis).

Four pinned invariants:

* **conservation** — at every driver tick, every arrived job is in
  exactly one place (queued, resident on one core, or done); nothing
  is lost, nothing is duplicated;
* **capacity** — no allocator ever places more jobs on a core than it
  has hardware contexts;
* **ROUND_ROBIN fairness** — while no core fills up, allocation counts
  across cores never differ by more than one;
* **PAIRING determinism** — identical telemetry snapshots produce the
  identical choice, every time.

The allocator-level properties drive :class:`CoreView` sequences
directly (fast, thousands of examples); conservation runs tiny real
driver ticks, so it exercises the genuine bookkeeping rather than a
model of it.
"""

import dataclasses

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.core.config import SMTConfig
from repro.multicore.alloc import (
    CoreView,
    allocator_names,
    make_allocator,
)
from repro.multicore.driver import (
    DONE,
    ArrivalConfig,
    MulticoreRunSpec,
    OpenSystemDriver,
)

# ----------------------------------------------------------------------
# Strategies.
# ----------------------------------------------------------------------
ALLOCATORS = sorted(allocator_names())

telemetry = st.fixed_dictionaries({
    "ipc": st.floats(0.0, 8.0, allow_nan=False),
    "iq": st.floats(0.0, 1.0, allow_nan=False),
    "miss": st.floats(0.0, 1.0, allow_nan=False),
})


@st.composite
def machines(draw, max_cores=5, max_capacity=4):
    """A CoreView list with at least one free context somewhere."""
    n_cores = draw(st.integers(1, max_cores))
    capacity = draw(st.integers(1, max_capacity))
    views = []
    for index in range(n_cores):
        resident = draw(st.integers(0, capacity))
        views.append(CoreView(
            index=index, resident=resident, capacity=capacity,
            telemetry=tuple(
                draw(telemetry) for _ in range(resident)
            ),
        ))
    if all(view.free == 0 for view in views):
        lucky = draw(st.integers(0, n_cores - 1))
        views[lucky] = dataclasses.replace(
            views[lucky], resident=capacity - 1,
            telemetry=views[lucky].telemetry[:capacity - 1],
        )
    return views


class _FakeJob:
    def __init__(self, snapshot):
        self.telemetry = snapshot


# ----------------------------------------------------------------------
# Capacity: every allocator, any machine shape.
# ----------------------------------------------------------------------
@given(spec=st.sampled_from(ALLOCATORS), views=machines(),
       seed=st.integers(0, 2**16), snapshot=telemetry)
@settings(max_examples=300, deadline=None)
def test_allocator_never_overfills_a_core(spec, views, seed, snapshot):
    allocator = make_allocator(spec, seed=seed)
    choice = allocator.choose(_FakeJob(snapshot), views)
    chosen = views[choice]
    assert chosen.index == choice
    assert chosen.free > 0, (
        f"{spec} chose core {choice} with no free context"
    )


@given(spec=st.sampled_from(ALLOCATORS), views=machines(),
       seed=st.integers(0, 2**16), snapshot=telemetry)
@settings(max_examples=200, deadline=None)
def test_sequential_fill_respects_capacity_bounds(spec, views, seed,
                                                  snapshot):
    """Keep allocating until the machine is full: every intermediate
    state stays within per-core bounds."""
    allocator = make_allocator(spec, seed=seed)
    views = list(views)
    while any(view.free > 0 for view in views):
        choice = allocator.choose(_FakeJob(snapshot), views)
        assert views[choice].free > 0
        views[choice] = dataclasses.replace(
            views[choice], resident=views[choice].resident + 1,
            telemetry=views[choice].telemetry + (snapshot,),
        )
        for view in views:
            assert 0 <= view.resident <= view.capacity


# ----------------------------------------------------------------------
# ROUND_ROBIN fairness.
# ----------------------------------------------------------------------
@given(n_cores=st.integers(1, 6), n_jobs=st.integers(1, 40),
       capacity=st.integers(7, 12))
@settings(max_examples=200, deadline=None)
def test_round_robin_fairness_invariant(n_cores, n_jobs, capacity):
    """With no core ever full, per-core allocation counts never differ
    by more than one at any prefix of the allocation sequence."""
    allocator = make_allocator("ROUND_ROBIN")
    counts = [0] * n_cores
    for _ in range(min(n_jobs, n_cores * capacity)):
        views = [
            CoreView(index=i, resident=counts[i], capacity=capacity)
            for i in range(n_cores)
        ]
        if not any(view.free > 0 for view in views):
            break
        counts[allocator.choose(object(), views)] += 1
        assert max(counts) - min(counts) <= 1, counts


# ----------------------------------------------------------------------
# PAIRING determinism.
# ----------------------------------------------------------------------
@given(views=machines(), snapshot=telemetry,
       seeds=st.tuples(st.integers(0, 2**16), st.integers(0, 2**16)),
       weights=st.fixed_dictionaries({
           "miss_weight": st.floats(0.0, 8.0, allow_nan=False),
           "iq_weight": st.floats(0.0, 8.0, allow_nan=False),
           "ipc_weight": st.floats(0.0, 8.0, allow_nan=False),
       }))
@settings(max_examples=300, deadline=None)
def test_pairing_is_deterministic_given_identical_telemetry(
        views, snapshot, seeds, weights):
    """Same snapshots -> same choice: across fresh instances, repeated
    calls, and different seeds (PAIRING uses no randomness)."""
    spec = ("PAIRING:" + ",".join(
        f"{k}={v!r}" for k, v in sorted(weights.items())
    ))
    job = _FakeJob(snapshot)
    first = make_allocator(spec, seed=seeds[0]).choose(job, views)
    again = make_allocator(spec, seed=seeds[0]).choose(job, views)
    other_seed = make_allocator(spec, seed=seeds[1]).choose(job, views)
    assert first == again == other_seed
    allocator = make_allocator(spec, seed=seeds[0])
    assert [allocator.choose(job, views) for _ in range(3)] \
        == [first] * 3


# ----------------------------------------------------------------------
# Conservation, on the real driver.
# ----------------------------------------------------------------------
@given(spec=st.sampled_from(ALLOCATORS),
       n_cores=st.integers(1, 3),
       seed=st.integers(0, 2**10),
       jobs=st.integers(2, 5))
@settings(max_examples=15, deadline=None)
def test_driver_conserves_jobs_every_tick(spec, n_cores, seed, jobs):
    """Every arrived job is allocated exactly once or still queued; the
    driver's own invariant checker (which raises on any breach) runs
    after every tick, and the terminal state accounts for every job."""
    run = MulticoreRunSpec(
        n_cores=n_cores, allocator=spec,
        config=SMTConfig(n_threads=2),
        quantum=150, max_cycles=12_000, seed=seed,
        arrival=ArrivalConfig(jobs=jobs, rate_per_kcycle=2.0,
                              service_instructions=150, seed=seed),
    )
    driver = OpenSystemDriver(run)
    while not driver.done() and driver.clock < run.max_cycles:
        driver.tick()          # raises DriverInvariantError on breach
        placed = sum(len(core.resident) for core in driver.cores)
        done = sum(1 for job in driver.jobs if job.state == DONE)
        queued = len(driver._queue)
        pending = len(driver._pending)
        assert placed + done + queued + pending == len(driver.jobs)
    result = driver.result()
    assert result.jobs_completed + result.unfinished == result.jobs_total
    assert sorted(result.completion_order) == sorted(
        record.job_id for record in result.jobs
        if record.finish is not None
    )
