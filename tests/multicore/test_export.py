"""Export and spec-grammar edge cases for the multicore layer.

* allocator spec grammar errors name the valid registry entries;
* the multicore loaders reject unknown schemas and versions;
* ``load_experiment_json`` rejects multicore documents (pointing at the
  right loader) instead of silently misreading them.
"""

import json

import pytest

from repro.core.config import SMTConfig
from repro.experiments import export
from repro.multicore.alloc import (
    allocator_names,
    make_allocator,
    parse_alloc_spec,
    validate_alloc_spec,
)
from repro.multicore.driver import (
    ArrivalConfig,
    MulticoreRunSpec,
    OpenSystemDriver,
)


def tiny_result():
    spec = MulticoreRunSpec(
        n_cores=2, allocator="LOAD", config=SMTConfig(n_threads=2),
        quantum=150, max_cycles=10_000, seed=2,
        arrival=ArrivalConfig(jobs=3, rate_per_kcycle=2.0,
                              service_instructions=150, seed=2),
    )
    return spec, OpenSystemDriver(spec).run()


# ----------------------------------------------------------------------
# Spec grammar errors list the registry.
# ----------------------------------------------------------------------
def test_unknown_allocator_error_lists_registry_names():
    with pytest.raises(ValueError) as excinfo:
        make_allocator("BOGUS")
    message = str(excinfo.value)
    for name in allocator_names():
        assert name in message
    assert "repro allocators" in message


def test_unknown_allocator_in_run_spec_lists_registry_names():
    with pytest.raises(ValueError) as excinfo:
        MulticoreRunSpec(
            n_cores=1, allocator="NOPE", config=SMTConfig(n_threads=1),
            arrival=ArrivalConfig(jobs=1, rate_per_kcycle=1.0,
                                  service_instructions=100),
        )
    for name in allocator_names():
        assert name in str(excinfo.value)


@pytest.mark.parametrize("spec,fragment", [
    ("PAIRING:miss_weight", "malformed allocator option"),
    ("PAIRING:=1.0", "malformed allocator option"),
    ("PAIRING:", "empty options"),
    ("PAIRING:miss_weight=1.0,miss_weight=2.0", "duplicate"),
    ("PAIRING:miss_weight=abc", "not a number"),
    ("PAIRING:bogus_knob=1.0", "valid options"),
    ("LOAD:anything=1", "valid options: (none)"),
    ("", "non-empty string"),
])
def test_malformed_spec_errors_are_specific(spec, fragment):
    with pytest.raises(ValueError) as excinfo:
        validate_alloc_spec(spec)
    assert fragment in str(excinfo.value)


def test_parse_alloc_spec_round_trip():
    name, params = parse_alloc_spec("PAIRING:miss_weight=2.0,iq_weight=0.1")
    assert name == "PAIRING"
    assert params == {"miss_weight": "2.0", "iq_weight": "0.1"}
    allocator = make_allocator("PAIRING:miss_weight=2.0")
    assert allocator.miss_weight == 2.0
    assert allocator.spec == "PAIRING:miss_weight=2.0"


def test_negative_pairing_weight_rejected():
    with pytest.raises(ValueError, match="non-negative"):
        make_allocator("PAIRING:miss_weight=-1.0")


# ----------------------------------------------------------------------
# Multicore documents: write, load, reject.
# ----------------------------------------------------------------------
def test_multicore_document_round_trip(tmp_path):
    spec, result = tiny_result()
    path = tmp_path / "run.json"
    written = export.write_multicore_json(str(path), result, spec=spec)
    loaded = export.load_multicore_json(str(path))
    # Compare through a JSON round trip: profile tuples become lists.
    assert loaded == json.loads(json.dumps(written))
    assert loaded["schema"] == export.MULTICORE_SCHEMA
    assert loaded["schema_version"] == export.SCHEMA_VERSION
    assert loaded["result"]["allocator"] == "LOAD"
    assert loaded["spec"]["allocator"] == "LOAD"
    assert "latency" in loaded["result"]
    assert len(loaded["result"]["cores"]) == 2


def test_multicore_loader_rejects_unknown_schema_version(tmp_path):
    spec, result = tiny_result()
    path = tmp_path / "run.json"
    document = export.write_multicore_json(str(path), result)
    document["schema_version"] = export.SCHEMA_VERSION + 1
    path.write_text(json.dumps(document))
    with pytest.raises(ValueError, match="unsupported .* schema version"):
        export.load_multicore_json(str(path))


def test_multicore_loader_rejects_wrong_schema(tmp_path):
    path = tmp_path / "wrong.json"
    path.write_text(json.dumps({
        "schema": export.EXPERIMENT_SCHEMA,
        "schema_version": export.SCHEMA_VERSION,
        "rows": [],
    }))
    with pytest.raises(ValueError, match="expected schema"):
        export.load_multicore_json(str(path))


def test_load_experiment_json_rejects_multicore_documents(tmp_path):
    """The classic experiment loader must refuse a multicore document —
    naming the loader that accepts it — and refuse unknown versions."""
    _, result = tiny_result()
    path = tmp_path / "allocation.json"
    export.write_multicore_json(str(path), result)
    with pytest.raises(ValueError) as excinfo:
        export.load_experiment_json(str(path))
    assert "multicore" in str(excinfo.value)
    assert "load_multicore_json" in str(excinfo.value)

    stale = tmp_path / "stale.json"
    stale.write_text(json.dumps({
        "schema": export.MULTICORE_EXPERIMENT_SCHEMA,
        "schema_version": 999,
        "rows": [],
    }))
    with pytest.raises(ValueError):
        export.load_experiment_json(str(stale))
    with pytest.raises(ValueError, match="unsupported"):
        export.load_multicore_experiment_json(str(stale))


def test_multicore_experiment_export_round_trip(tmp_path):
    _, result_a = tiny_result()
    documents = [result_a.to_dict(), result_a.to_dict()]
    paths = export.export_multicore_experiment(
        "allocation", documents, str(tmp_path)
    )
    assert [p.endswith("allocation.json") for p in paths] == [True, False]
    loaded = export.load_multicore_experiment_json(paths[0])
    assert loaded["schema"] == export.MULTICORE_EXPERIMENT_SCHEMA
    assert len(loaded["rows"]) == 2
    assert loaded["rows"][0]["allocator"] == "LOAD"
    assert loaded["rows"][0]["latency_total_p50"] \
        == result_a.latency()["total"]["p50"]
    with open(paths[1]) as handle:
        header = handle.readline()
    assert "latency_total_p99" in header
