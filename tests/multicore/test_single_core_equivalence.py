"""MultiCoreSimulator with one core == the bare Simulator, bit for bit.

The multicore layer must not perturb the validated single-core machine:
``MultiCoreSimulator.static_partition`` at N=1 with a static allocator
must produce a ``SimResult`` identical to ``Simulator.run`` on the same
config and programs — with the fast-step loop both enabled and
disabled.
"""

import dataclasses

import pytest

from repro.core.config import SMTConfig
from repro.core.simulator import Simulator
from repro.multicore.machine import MultiCoreSimulator, build_core
from repro.workloads.mixes import standard_mix

RUN = dict(warmup_cycles=500, measure_cycles=3000,
           functional_warmup_instructions=8000)


def reference_result(config, programs, fast_step):
    sim = Simulator(config, programs)
    sim.use_fast_step = fast_step
    return sim.run(**RUN)


@pytest.mark.parametrize("fast_step", [True, False],
                         ids=["fast-step", "reference-step"])
@pytest.mark.parametrize("n_threads", [1, 2, 4])
def test_single_core_machine_is_bit_identical(n_threads, fast_step):
    config = SMTConfig(n_threads=n_threads)
    programs = standard_mix(n_threads, 0)

    machine = MultiCoreSimulator.static_partition(
        config, programs, n_cores=1, allocator_spec="ROUND_ROBIN",
    )
    assert machine.n_cores == 1
    machine.set_fast_step(fast_step)
    results = machine.run(**RUN)

    expected = reference_result(config, programs, fast_step)
    assert len(results) == 1
    assert results[0] == expected  # SimResult is a plain dataclass


@pytest.mark.parametrize("allocator",
                         ["RANDOM", "ROUND_ROBIN", "LOAD", "PAIRING"])
def test_every_allocator_is_equivalent_at_one_core(allocator):
    """With one core there is no choice to make: every allocator must
    yield the same machine and the same result."""
    config = SMTConfig(n_threads=2)
    programs = standard_mix(2, 1)
    machine = MultiCoreSimulator.static_partition(
        config, programs, n_cores=1, allocator_spec=allocator, seed=9,
    )
    assert machine.run(**RUN)[0] == reference_result(config, programs, True)


def test_build_core_reuses_template_when_counts_match():
    """The identity-config path: a full core runs the exact template
    object, so no with_options copy can drift the configuration."""
    config = SMTConfig(n_threads=2)
    full = build_core(config, standard_mix(2, 0))
    assert full.cfg is config
    partial = build_core(config, standard_mix(1, 0))
    assert partial.cfg is not config
    assert partial.cfg.n_threads == 1
    assert dataclasses.asdict(partial.cfg) \
        == dataclasses.asdict(config.with_options(n_threads=1))


def test_two_core_partition_matches_two_bare_simulators():
    """ROUND_ROBIN over 2 cores x 1 context deals programs alternately;
    each core must match a standalone simulator on its share."""
    template = SMTConfig(n_threads=1)
    programs = standard_mix(2, 0)
    machine = MultiCoreSimulator.static_partition(
        template, programs, n_cores=2, allocator_spec="ROUND_ROBIN",
    )
    results = machine.run(**RUN)
    expected = [
        reference_result(template, [programs[0]], True),
        reference_result(template, [programs[1]], True),
    ]
    assert results == expected
