"""Tests for the command-line interface."""

import io
from contextlib import redirect_stdout

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    buf = io.StringIO()
    with redirect_stdout(buf):
        code = main(list(argv))
    return code, buf.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.threads == 8
        assert args.policy == "ICOUNT"
        assert args.num1 == 2 and args.num2 == 8

    def test_invalid_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policy", "FIFO"])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig3"])
        assert args.name == "fig3"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_workload_choices(self):
        args = build_parser().parse_args(["workload", "xlisp"])
        assert args.name == "xlisp"

    def test_experiment_supervision_flags(self):
        args = build_parser().parse_args([
            "experiment", "fig3", "--timeout", "30", "--max-retries", "2",
            "--journal", "j.jsonl", "--report", "r.json",
        ])
        assert args.timeout == 30.0
        assert args.max_retries == 2
        assert args.journal == "j.jsonl"
        assert args.report == "r.json"

    def test_fuzz_resume_flags(self):
        args = build_parser().parse_args(
            ["fuzz", "--timeout", "60", "--resume", "fuzz.jsonl"])
        assert args.timeout == 60.0
        assert args.resume == "fuzz.jsonl"


class TestCommands:
    def test_list(self):
        code, out = run_cli("list")
        assert code == 0
        assert "ICOUNT" in out and "espresso" in out and "fig5" in out

    def test_workload_characterisation(self):
        code, out = run_cli("workload", "espresso", "--instructions", "3000")
        assert code == 0
        assert "conditional branches" in out
        assert "loads+stores" in out

    def test_workload_listing(self):
        code, out = run_cli("workload", "ora", "--listing")
        assert code == 0
        assert "_start:" in out

    def test_run_small(self):
        code, out = run_cli(
            "run", "--threads", "2", "--cycles", "1200", "--warmup", "200",
        )
        assert code == 0
        assert "IPC" in out and "ICOUNT.2.8" in out

    def test_run_superscalar_flag(self):
        code, out = run_cli(
            "run", "--threads", "1", "--superscalar",
            "--cycles", "800", "--warmup", "100",
        )
        assert code == 0
        assert "superscalar pipeline" in out

    def test_run_check_invariants(self):
        code, out = run_cli(
            "run", "--threads", "2", "--cycles", "800", "--warmup", "100",
            "--check-invariants",
        )
        assert code == 0
        assert "invariants    : clean" in out

    def test_fuzz_small_campaign(self, tmp_path):
        code, out = run_cli(
            "fuzz", "--seeds", "2", "--max-cycles", "400",
            "--corpus", str(tmp_path / "corpus"), "--quiet",
        )
        assert code == 0
        assert "2 seeds, 2 ok, clean" in out

    def test_fuzz_replay_corpus_case(self):
        import glob
        import os
        corpus = os.path.join(os.path.dirname(__file__), "corpus")
        paths = sorted(glob.glob(os.path.join(corpus, "case-*.json")))
        assert paths, "committed corpus missing"
        code, out = run_cli("fuzz", "--replay", paths[0])
        assert code == 0
        assert "-> ok" in out


class TestObservabilityFlags:
    def test_run_metrics_prints_histograms_and_telemetry(self):
        code, out = run_cli(
            "run", "--threads", "2", "--cycles", "1000", "--warmup", "200",
            "--metrics", "--telemetry-interval", "100",
        )
        assert code == 0
        assert "fetch active" in out
        assert "telemetry (100-cycle intervals):" in out
        assert "IPC" in out and "icount" in out

    def test_run_metrics_json_writes_valid_document(self, tmp_path):
        from repro.experiments import export

        path = str(tmp_path / "run.json")
        code, out = run_cli(
            "run", "--threads", "2", "--cycles", "1000", "--warmup", "200",
            "--metrics-json", path,
        )
        assert code == 0
        assert f"run report    : {path}" in out
        document = export.load_run_json(path)
        assert document["schema_version"] == export.SCHEMA_VERSION
        assert document["result"]["n_threads"] == 2
        assert document["telemetry"]["samples"]
        assert document["metrics"]["histograms"]

    def test_run_trace_prints_pipeview(self):
        code, out = run_cli(
            "run", "--threads", "1", "--cycles", "600", "--warmup", "100",
            "--trace", "32",
        )
        assert code == 0
        assert "pipeline trace, cycles 100-132:" in out
        # Pipeview stage letters appear in the rendered window.
        assert "F" in out.split("pipeline trace")[1]

    def test_experiment_export_writes_artifacts(self, tmp_path, monkeypatch):
        import repro.cli as cli
        from repro.experiments import export
        from repro.experiments.runner import ExperimentPoint
        from tests.experiments.test_export import fake_point

        fake = cli.Experiment(
            compute=lambda budget: {"ICOUNT.2.8": [
                fake_point("ICOUNT.2.8", 1, 2.0),
                fake_point("ICOUNT.2.8", 4, 4.0),
            ]},
            render=lambda data: print("rendered", len(data)),
        )
        monkeypatch.setitem(cli.EXPERIMENTS, "fig3", fake)
        out_dir = str(tmp_path / "artifacts")
        code, out = run_cli("experiment", "fig3", "--fast",
                            "--export", out_dir)
        assert code == 0
        assert "rendered 1" in out
        document = export.load_experiment_json(f"{out_dir}/fig3.json")
        assert document["experiment"] == "fig3"
        assert len(document["rows"]) == 2
        with open(f"{out_dir}/fig3.csv") as f:
            assert len(f.readlines()) == 3

class TestSupervisedCli:
    TINY_SPEC_KWARGS = dict(warmup_cycles=100, measure_cycles=400,
                            functional_warmup_instructions=2000, rotations=1)

    def _fake_experiment(self, cli, monkeypatch):
        from repro.core.config import SMTConfig
        from repro.experiments.parallel import RunSpec, execute_runs
        from repro.experiments.runner import RunBudget

        tiny = RunBudget(**self.TINY_SPEC_KWARGS)

        def compute(budget):
            execute_runs(
                [RunSpec(config=SMTConfig(n_threads=1), rotation=0,
                         budget=tiny)],
                jobs=1, use_cache=False,
            )
            return []

        monkeypatch.setitem(cli.EXPERIMENTS, "fig3", cli.Experiment(
            compute=compute, render=lambda data: None, exportable=False,
        ))

    def test_supervised_experiment_writes_journal_and_report(
            self, tmp_path, monkeypatch):
        import os

        import repro.cli as cli
        from repro.experiments import export

        self._fake_experiment(cli, monkeypatch)
        journal = str(tmp_path / "fig3.jsonl")
        report = str(tmp_path / "fig3-report.json")
        code, out = run_cli(
            "experiment", "fig3", "--fast", "--timeout", "120",
            "--max-retries", "0", "--journal", journal, "--report", report,
        )
        assert code == 0
        assert "campaign total: 1/1 points ok" in out
        assert f"--resume {journal}" in out
        assert os.path.exists(journal)
        document = export.load_campaign_json(report)
        assert document["totals"]["succeeded"] == 1
        assert document["totals"]["failed"] == 0

    def test_failed_campaign_exits_nonzero_and_names_failure(
            self, tmp_path, monkeypatch):
        import repro.cli as cli
        from repro.experiments import parallel

        self._fake_experiment(cli, monkeypatch)

        def broken(spec, watchdog=None):
            raise ValueError("injected crash")

        monkeypatch.setattr(parallel, "run_spec", broken)
        journal = str(tmp_path / "fig3.jsonl")
        code, out = run_cli(
            "experiment", "fig3", "--fast", "--timeout", "120",
            "--max-retries", "0", "--journal", journal,
        )
        assert code == 1
        assert "[crash]" in out
        assert "injected crash" in out
        assert "0/1 points ok" in out

    def test_fuzz_journal_then_resume(self, tmp_path):
        journal = str(tmp_path / "fuzz.jsonl")
        code, out = run_cli(
            "fuzz", "--seeds", "2", "--max-cycles", "400", "--quiet",
            "--journal", journal,
        )
        assert code == 0
        code, out = run_cli(
            "fuzz", "--seeds", "3", "--max-cycles", "400", "--quiet",
            "--resume", journal,
        )
        assert code == 0
        assert "2 resumed-skipped" in out


class TestEnvDefaults:
    def test_experiment_does_not_freeze_env_defaults(self, monkeypatch):
        # Regression: cmd_experiment used to resolve default_jobs() /
        # default_use_cache() eagerly, freezing the environment knobs
        # for the rest of the process.
        import repro.cli as cli
        from repro.experiments import parallel

        monkeypatch.setitem(cli.EXPERIMENTS, "fig3", cli.Experiment(
            compute=lambda budget: [],
            render=lambda data: None,
            exportable=False,
        ))
        parallel.configure(jobs=None, use_cache=None, progress=None)
        try:
            code, _ = run_cli("experiment", "fig3", "--fast")
            assert code == 0
            monkeypatch.setenv("REPRO_JOBS", "7")
            monkeypatch.setenv("REPRO_NO_CACHE", "1")
            assert parallel.default_jobs() == 7
            assert parallel.default_use_cache() is False
        finally:
            parallel.configure(jobs=None, use_cache=None, progress=None)


class TestCampaignCli:
    def test_campaign_parser_defaults(self):
        args = build_parser().parse_args(["campaign", "submit", "runs/"])
        assert args.threads == 8 and args.rotations == 1
        assert args.lease_ttl == 60.0
        assert args.max_attempts == 3 and args.poison_threshold == 3

    def test_worker_parser_flags(self):
        args = build_parser().parse_args([
            "worker", "runs/", "--drain", "--id", "w0",
            "--max-tasks", "5", "--chaos", "plan.json",
        ])
        assert args.directory == "runs/"
        assert args.drain and args.worker_id == "w0"
        assert args.max_tasks == 5 and args.chaos == "plan.json"

    def test_experiment_fabric_flags(self):
        args = build_parser().parse_args([
            "experiment", "fig3", "--fabric", "--fabric-dir", "fab/",
        ])
        assert args.fabric is True
        assert args.fabric_dir == "fab/"

    def test_submit_status_drain_round_trip(self, tmp_path):
        directory = str(tmp_path / "camp")
        report = str(tmp_path / "report.json")
        code, out = run_cli(
            "campaign", "submit", directory, "--threads", "2",
            "--rotations", "1", "--fast",
        )
        assert code == 0
        assert "submitted 1 new task(s)" in out
        assert "1 pending" in out

        code, out = run_cli("campaign", "submit", directory, "--threads",
                            "2", "--rotations", "1", "--fast")
        assert code == 0
        assert "submitted 0 new task(s)" in out  # idempotent

        code, out = run_cli("campaign", "drain", directory,
                            "--report", report)
        assert code == 0
        assert "1/1 done" in out
        from repro.experiments import export
        document = export.load_fabric_json(report)
        assert document["counts"] == {"done": 1}

        code, out = run_cli("campaign", "status", directory)
        assert code == 0
        assert "1/1 done" in out

    def test_worker_serves_nothing_on_empty_campaign(self, tmp_path):
        from repro.sched.campaign import CampaignConfig, submit_specs

        directory = str(tmp_path / "camp")
        submit_specs(directory, [], CampaignConfig())
        code, out = run_cli("worker", directory, "--drain")
        assert code == 0
        assert "0 task(s) completed" in out
