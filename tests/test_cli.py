"""Tests for the command-line interface."""

import io
from contextlib import redirect_stdout

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    buf = io.StringIO()
    with redirect_stdout(buf):
        code = main(list(argv))
    return code, buf.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.threads == 8
        assert args.policy == "ICOUNT"
        assert args.num1 == 2 and args.num2 == 8

    def test_invalid_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policy", "FIFO"])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig3"])
        assert args.name == "fig3"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_workload_choices(self):
        args = build_parser().parse_args(["workload", "xlisp"])
        assert args.name == "xlisp"


class TestCommands:
    def test_list(self):
        code, out = run_cli("list")
        assert code == 0
        assert "ICOUNT" in out and "espresso" in out and "fig5" in out

    def test_workload_characterisation(self):
        code, out = run_cli("workload", "espresso", "--instructions", "3000")
        assert code == 0
        assert "conditional branches" in out
        assert "loads+stores" in out

    def test_workload_listing(self):
        code, out = run_cli("workload", "ora", "--listing")
        assert code == 0
        assert "_start:" in out

    def test_run_small(self):
        code, out = run_cli(
            "run", "--threads", "2", "--cycles", "1200", "--warmup", "200",
        )
        assert code == 0
        assert "IPC" in out and "ICOUNT.2.8" in out

    def test_run_superscalar_flag(self):
        code, out = run_cli(
            "run", "--threads", "1", "--superscalar",
            "--cycles", "800", "--warmup", "100",
        )
        assert code == 0
        assert "superscalar pipeline" in out
