#!/usr/bin/env python
"""Custom workloads: write your own program in the reproduction ISA and
run it through the cycle-level SMT pipeline.

Demonstrates the assembler, the functional emulator (the oracle), and
co-scheduling a hand-written kernel next to the synthetic SPEC92-like
programs on one SMT core — then uses the commit listener to trace the
first committed instructions.

Run:  python examples/custom_workload.py
"""

from repro import PROFILES, SMTConfig, Simulator, generate_program
from repro.isa import Emulator, assemble

# A little dot-product-style kernel with a data-dependent branch.
KERNEL = """
.data
vec_a:  .space 2048
vec_b:  .space 2048
result: .space 8

.text
_start:
    li   r1, vec_a
    li   r2, vec_b
outer:
    li   r3, 256            # elements
    li   r4, 0              # offset
loop:
    add  r5, r1, r4
    add  r6, r2, r4
    fld  f1, 0(r5)
    fld  f2, 0(r6)
    fmul f3, f1, f2
    fadd f4, f4, f3
    ld   r7, 0(r5)
    andi r7, r7, 1
    beqz r7, even
    addi r8, r8, 1          # count odd elements
even:
    addi r4, r4, 8
    addi r3, r3, -1
    bnez r3, loop
    li   r9, result
    fst  f4, 0(r9)
    j    outer
"""


def main():
    kernel = assemble(KERNEL, name="dotprod")
    print(f"assembled {len(kernel)} instructions\n")

    # 1. Architectural dry run through the emulator.
    emulator = Emulator(kernel)
    emulator.run(max_instructions=5000)
    print(f"emulator: retired {emulator.instret} instructions, "
          f"f4 accumulator = {emulator.fp_regs[4]:.1f}")

    # 2. Alone on the SMT core.
    sim = Simulator(SMTConfig(n_threads=1), [kernel])
    alone = sim.run(warmup_cycles=500, measure_cycles=5000)
    print(f"alone:    IPC={alone.ipc:.2f} "
          f"bmr={alone.branch_mispredict_rate:.1%} "
          f"D$={alone.dcache.miss_rate:.1%}")

    # 3. Co-scheduled with three of the paper's programs.
    partners = [generate_program(PROFILES[n], seed=0)
                for n in ("espresso", "tomcatv", "xlisp")]
    config = SMTConfig(n_threads=4, fetch_policy="ICOUNT",
                       fetch_threads=2, fetch_per_thread=8)
    sim = Simulator(config, [kernel] + partners)

    trace = []
    sim.commit_listener = (
        lambda uop: trace.append(uop) if len(trace) < 12 else None
    )
    shared = sim.run(warmup_cycles=500, measure_cycles=5000)
    print(f"shared:   total IPC={shared.ipc:.2f}, kernel committed "
          f"{shared.committed_per_thread.get(0, 0)} of "
          f"{shared.committed} instructions")

    print("\nfirst committed instructions (thread, pc, instruction):")
    for uop in trace[:12]:
        print(f"  t{uop.tid}  {uop.pc:#08x}  {uop.instr}")


if __name__ == "__main__":
    main()
