#!/usr/bin/env python
"""Pipeline analysis: look *inside* the machine.

Uses the pipeline tracer to render a text pipeview of SMT execution
(watch instructions from different threads interleave in the same
cycles), and the histogram collector to compare queue-wait and
residency distributions under round-robin vs ICOUNT fetch — the
distributions behind the paper's Table 4.

Run:  python examples/pipeline_analysis.py
"""

from repro import SMTConfig, Simulator, standard_mix
from repro.core.config import scheme
from repro.core.histograms import MetricsCollector
from repro.core.trace import PipelineTracer


def show_pipeview():
    print("=" * 72)
    print("Pipeview: 4 threads sharing the pipeline (ICOUNT.2.8)")
    print("=" * 72)
    config = scheme("ICOUNT", 2, 8, n_threads=4)
    sim = Simulator(config, standard_mix(4))
    sim.functional_warmup(20000)
    for _ in range(200):
        sim.step()
    tracer = PipelineTracer(sim, max_records=48)
    start = sim.cycle
    for _ in range(60):
        sim.step()
    print(tracer.render(start + 2, start + 50, max_rows=28))
    print()


def show_distributions():
    print("=" * 72)
    print("Why ICOUNT wins: queue-wait distributions (RR vs ICOUNT, 8T)")
    print("=" * 72)
    for policy in ("RR", "ICOUNT"):
        config = scheme(policy, 2, 8, n_threads=8)
        sim = Simulator(config, standard_mix(8))
        sim.functional_warmup(40000)
        for _ in range(1500):
            sim.step()
        collector = MetricsCollector(sim)
        for _ in range(6000):
            sim.step()
        print(f"\n--- {policy}.2.8 ---")
        print(collector.queue_wait.render(max_rows=8))
        print(f"fairness (Jain): {collector.fairness():.3f}")
        collector.detach()
    print("\nLong queue waits are IQ clog: instructions parked in the "
          "queue\nbehind stalled threads.  ICOUNT compresses the tail.")


def main():
    show_pipeview()
    show_distributions()


if __name__ == "__main__":
    main()
