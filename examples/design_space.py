#!/usr/bin/env python
"""Design-space exploration: sweeps, charts, and CSV export.

Uses the sensitivity harness to sweep instruction-queue size and
return-stack depth on the improved machine, renders the policy
comparison as a text chart, and exports the figure data as CSV —
the workflow an architect would use this simulator for.

Run:  REPRO_FAST=1 python examples/design_space.py    (quick)
      python examples/design_space.py                 (slower, steadier)
"""

from repro.experiments import figures, sensitivity
from repro.experiments.export import ascii_chart, csv_text
from repro.experiments.runner import RunBudget


def main():
    budget = RunBudget.from_environment()

    print("=" * 64)
    print("Instruction-queue size sweep (ICOUNT.2.8, 8 threads)")
    print("=" * 64)
    sweep = sensitivity.queue_size_sweep(budget=budget, sizes=(8, 16, 32, 64))
    sensitivity.print_sweep("IQ entries vs IPC:", sweep, " entries")

    print()
    print("=" * 64)
    print("Return-stack depth sweep")
    print("=" * 64)
    sweep = sensitivity.ras_depth_sweep(budget=budget, depths=(1, 4, 12, 32))
    sensitivity.print_sweep("RAS depth vs IPC:", sweep, " entries")

    print()
    print("=" * 64)
    print("Fetch policies as a chart (RR vs ICOUNT, 1.8 partitioning)")
    print("=" * 64)
    data = figures.figure5(budget=budget, thread_counts=(2, 4, 8),
                           partitions=((1, 8),))
    chart_data = {k: v for k, v in data.items()
                  if k in ("RR.1.8", "ICOUNT.1.8", "IQPOSN.1.8")}
    print(ascii_chart(chart_data, title="IPC vs threads"))

    print()
    print("CSV export (first 5 lines):")
    for line in csv_text(data).splitlines()[:5]:
        print("  " + line)


if __name__ == "__main__":
    main()
