#!/usr/bin/env python
"""Quickstart: simulate the paper's best machine and print its metrics.

Builds the improved SMT architecture (ICOUNT.2.8 — instruction-count
fetch priority, fetching up to 8 instructions from each of 2 threads per
cycle) running the full 8-program multiprogrammed workload, and compares
it against the round-robin baseline and a single thread.

Run:  python examples/quickstart.py
"""

from repro import SMTConfig, Simulator, standard_mix
from repro.core.config import scheme


def simulate(config: SMTConfig, label: str, rotations: int = 3):
    """Average a few benchmark rotations, as the paper averages runs."""
    results = []
    for rotation in range(rotations):
        sim = Simulator(config, standard_mix(config.n_threads, rotation))
        results.append(sim.run(warmup_cycles=2000, measure_cycles=12000))
    ipc = sum(r.ipc for r in results) / rotations
    fetch = sum(r.useful_fetch_per_cycle for r in results) / rotations
    wpf = sum(r.wrong_path_fetched_frac for r in results) / rotations
    iqf = sum(r.int_iq_full_frac for r in results) / rotations
    print(f"{label:24s} IPC={ipc:5.2f}   "
          f"useful fetch/cycle={fetch:5.2f}   "
          f"wrong-path fetched={wpf:5.1%}   "
          f"IQ-full(int)={iqf:4.0%}")
    return ipc


def main():
    print("SMT reproduction quickstart "
          "(Tullsen et al., ISCA 1996)\n")

    single = simulate(SMTConfig(n_threads=1), "1 thread (RR.1.8)")
    base = simulate(SMTConfig(n_threads=8), "8 threads, RR.1.8")
    best = simulate(scheme("ICOUNT", 2, 8, n_threads=8),
                    "8 threads, ICOUNT.2.8")

    print()
    print(f"SMT gain, base design:       {base / single:.2f}x")
    print(f"SMT gain, exploiting choice: {best / single:.2f}x")
    print(f"ICOUNT over round-robin:     {(best / base - 1):+.0%}")
    print("\nPaper reference points: base 1.8x, tuned 2.5x "
          "(5.4 IPC at 8 threads), ICOUNT +23% over the best RR.")


if __name__ == "__main__":
    main()
