#!/usr/bin/env python
"""Fetch-policy study: reproduce the heart of the paper (Section 5).

Sweeps the five thread-choice heuristics (RR, BRCOUNT, MISSCOUNT,
ICOUNT, IQPOSN) over both fetch partitionings the paper plots in
Figure 5, and prints the IQ-clog diagnostics (Table 4) that explain
*why* ICOUNT wins: it keeps the instruction queues from filling with
blocked instructions from a few slow threads.

Run:  python examples/fetch_policy_study.py            (few minutes)
      REPRO_FAST=1 python examples/fetch_policy_study.py  (quick look)
"""

from repro.core.config import scheme
from repro.experiments.runner import RunBudget, run_config

POLICIES = ("RR", "BRCOUNT", "MISSCOUNT", "ICOUNT", "IQPOSN")


def main():
    budget = RunBudget.from_environment()
    print("Fetch thread-choice policies at 8 threads "
          "(paper Figure 5 / Table 4)\n")
    header = (f"{'scheme':16s} {'IPC':>6s} {'int IQ-full':>12s} "
              f"{'fp IQ-full':>11s} {'queue pop':>10s} {'wrong-path':>11s}")
    print(header)
    print("-" * len(header))

    best = {}
    for num1, num2 in ((1, 8), (2, 8)):
        for policy in POLICIES:
            config = scheme(policy, num1, num2, n_threads=8)
            point = run_config(config, budget=budget)
            print(f"{config.scheme_name:16s} {point.ipc:6.2f} "
                  f"{point.metric('int_iq_full_frac'):12.0%} "
                  f"{point.metric('fp_iq_full_frac'):11.0%} "
                  f"{point.metric('avg_queue_population'):10.1f} "
                  f"{point.metric('wrong_path_fetched_frac'):11.1%}")
            best[config.scheme_name] = point.ipc
        print()

    rr = best["RR.2.8"]
    icount = best["ICOUNT.2.8"]
    print(f"ICOUNT.2.8 vs RR.2.8: {(icount / rr - 1):+.0%} "
          "(paper: +23% over the best RR)")
    print("Watch the int IQ-full column: instruction counting nearly "
          "eliminates IQ clog, which is the paper's central insight.")


if __name__ == "__main__":
    main()
