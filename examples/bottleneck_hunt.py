#!/usr/bin/env python
"""Bottleneck hunt: reproduce Section 7 of the paper.

Takes the improved architecture (ICOUNT.2.8, 8 threads) and measures
the throughput effect of relieving or restricting each machine
component — functional units, queue size, fetch bandwidth, branch
prediction, speculation, memory bandwidth, and register file size —
printing each delta next to the paper's number.

Run:  python examples/bottleneck_hunt.py              (several minutes)
      REPRO_FAST=1 python examples/bottleneck_hunt.py (quick look)
"""

from repro.experiments.bottlenecks import print_report
from repro.experiments.runner import RunBudget


def main():
    print("Section 7 bottleneck hunt — baseline ICOUNT.2.8, 8 threads\n")
    print_report(RunBudget.from_environment())
    print(
        "\nReading the tea leaves, as the paper does: issue bandwidth "
        "and queue size no longer matter, speculation restrictions "
        "hurt a single thread far more than eight, and fetch "
        "throughput remains the prime bottleneck."
    )


if __name__ == "__main__":
    main()
