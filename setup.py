"""Setup shim for environments with older setuptools/pip.

``pip install -e .`` uses pyproject.toml on modern toolchains; this shim
lets ``python setup.py develop`` work where PEP 517 editable installs are
unavailable (e.g. offline machines without the ``wheel`` package).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
